//! Negative-path tests for the durable file header (ISSUE 7, satellite 1):
//! corrupt length prefixes, absurd declared lengths, and truncation at
//! every byte must all fail verification with a clean `Err` — the reader
//! never trusts the header to size an allocation, and it never panics.

use std::path::PathBuf;

use fewner_util::durable::{read_verified, write_atomic, MAGIC};

const PAYLOAD: &[u8] = b"{\"phi\":[1.0,2.0,3.0],\"n_ways\":2}";

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fewner-durable-neg-{tag}-{}", std::process::id()))
}

/// Writes a valid durable file, then hands its header fields and payload to
/// `mutate` to produce the adversarial bytes actually written back.
fn with_mutated_file(
    tag: &str,
    mutate: impl FnOnce(&str, u32, usize, &[u8]) -> Vec<u8>,
) -> PathBuf {
    let path = scratch(tag);
    write_atomic(&path, PAYLOAD).expect("seed write");
    let bytes = std::fs::read(&path).expect("read back");
    let newline = bytes.iter().position(|&b| b == b'\n').expect("header line");
    let header = std::str::from_utf8(&bytes[..newline]).expect("utf8 header");
    let mut parts = header.split(' ');
    let magic = parts.next().expect("magic");
    assert_eq!(magic, MAGIC);
    let crc = u32::from_str_radix(parts.next().expect("crc"), 16).expect("crc hex");
    let len: usize = parts.next().expect("len").parse().expect("len digits");
    let mutated = mutate(magic, crc, len, &bytes[newline + 1..]);
    std::fs::write(&path, mutated).expect("write mutation");
    path
}

#[test]
fn the_reference_file_verifies() {
    let path = scratch("ok");
    write_atomic(&path, PAYLOAD).unwrap();
    assert_eq!(read_verified(&path).unwrap(), PAYLOAD);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_length_prefix_is_rejected() {
    let path = with_mutated_file("badlen", |magic, crc, _len, payload| {
        let mut out = format!("{magic} {crc:08x} not-a-number\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(err.contains("length"), "unexpected error: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn huge_declared_length_is_rejected_not_trusted() {
    // A header claiming ~4 GiB over a 32-byte payload: the reader compares
    // against the bytes actually present instead of allocating what the
    // header demands.
    let path = with_mutated_file("hugelen", |magic, crc, _len, payload| {
        let mut out = format!("{magic} {crc:08x} 4294967296\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(
        err.contains("truncated or padded"),
        "unexpected error: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_crc_field_is_rejected() {
    let path = with_mutated_file("badcrc", |magic, _crc, len, payload| {
        let mut out = format!("{magic} zzzzzzzz {len}\n").into_bytes();
        out.extend_from_slice(payload);
        out
    });
    assert!(read_verified(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_payload_byte_fails_the_crc() {
    let path = with_mutated_file("bitflip", |magic, crc, len, payload| {
        let mut out = format!("{magic} {crc:08x} {len}\n").into_bytes();
        let mut payload = payload.to_vec();
        payload[len / 2] ^= 0x01;
        out.extend_from_slice(&payload);
        out
    });
    let err = read_verified(&path).unwrap_err().to_string();
    assert!(err.contains("CRC mismatch"), "unexpected error: {err}");
    std::fs::remove_file(&path).ok();
}

/// Mirrors `json_negative`'s truncation sweep: every proper prefix of a
/// valid durable file must fail verification cleanly — a half-written file
/// (torn write, full disk) can never be mistaken for a good one.
#[test]
fn every_truncation_errors_without_panicking() {
    let path = scratch("trunc");
    write_atomic(&path, PAYLOAD).unwrap();
    let full = std::fs::read(&path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        assert!(
            read_verified(&path).is_err(),
            "prefix of {cut}/{} bytes verified",
            full.len()
        );
    }
    std::fs::remove_file(&path).ok();
}

// --- Wire-frame classification (the sharded gradient exchange's reader) ---
//
// `read_wire_frame` is what a shard coordinator and its workers use to pull
// partial-gradient frames off a TCP stream. Unlike the file reader above it
// must *classify* damage: a CRC failure with an intact boundary is
// retransmittable, while a lost boundary or a dead peer is terminal.

mod wire {
    use fewner_util::durable::{frame, read_wire_frame, WireFrame};

    const PAYLOAD: &[u8] = br#"{"type":"partial","iteration":3}"#;
    const MAX: usize = 1 << 20;

    fn read(bytes: &[u8]) -> WireFrame {
        read_wire_frame(&mut std::io::Cursor::new(bytes), MAX).expect("no I/O error")
    }

    #[test]
    fn a_clean_frame_round_trips() {
        match read(&frame(PAYLOAD)) {
            WireFrame::Frame(p) => assert_eq!(p, PAYLOAD),
            other => panic!("expected Frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_stream_is_a_clean_eof() {
        assert!(matches!(read(b""), WireFrame::Eof));
    }

    #[test]
    fn every_truncation_is_classified_never_a_frame() {
        // A peer that dies mid-send leaves a prefix. No prefix may parse as
        // a complete frame, and none may panic; cutting at 0 is Eof, any
        // later cut is Truncated (the peer died mid-header or mid-payload).
        let full = frame(PAYLOAD);
        for cut in 0..full.len() {
            match read(&full[..cut]) {
                WireFrame::Eof => assert_eq!(cut, 0, "Eof only before any byte"),
                WireFrame::Truncated(_) => assert!(cut > 0),
                other => panic!("prefix of {cut} bytes classified as {other:?}"),
            }
        }
    }

    #[test]
    fn a_flipped_payload_byte_is_corrupt_and_retransmittable() {
        // The frame boundary survives — the reader consumed exactly one
        // frame — so a second, clean frame behind it is still readable.
        // That property is what lets the shard protocol retransmit instead
        // of tearing the connection down.
        let mut bytes = frame(PAYLOAD);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        bytes.extend_from_slice(&frame(PAYLOAD));
        let mut cursor = std::io::Cursor::new(bytes.as_slice());
        match read_wire_frame(&mut cursor, MAX).unwrap() {
            WireFrame::Corrupt(detail) => assert!(detail.contains("CRC"), "{detail}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        match read_wire_frame(&mut cursor, MAX).unwrap() {
            WireFrame::Frame(p) => assert_eq!(p, PAYLOAD),
            other => panic!("frame after the corrupt one: {other:?}"),
        }
    }

    #[test]
    fn a_torn_payload_with_intact_length_is_corrupt() {
        // Half the payload zeroed but the declared length honest: the CRC
        // catches it, and because the length was honest the boundary holds.
        let mut bytes = frame(PAYLOAD);
        let body = bytes.len() - PAYLOAD.len();
        for b in &mut bytes[body + PAYLOAD.len() / 2..] {
            *b = 0;
        }
        assert!(matches!(read(&bytes), WireFrame::Corrupt(_)));
    }

    #[test]
    fn garbled_headers_lose_the_connection_not_the_process() {
        for bad in [
            b"NOTMAGIC 00000000 4\nabcd".as_slice(),
            b"FEWNERD1 zzzzzzzz 4\nabcd".as_slice(),
            b"FEWNERD1 00000000 nope\nabcd".as_slice(),
            b"FEWNERD1\nabcd".as_slice(),
        ] {
            assert!(
                matches!(read(bad), WireFrame::Garbled(_)),
                "{:?} must be Garbled",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn absurd_declared_length_is_garbled_not_allocated() {
        // A hostile header declaring 4 GiB must be rejected from the header
        // alone — the reader never trusts it to size a buffer.
        let huge = b"FEWNERD1 00000000 4294967296\n";
        assert!(matches!(read(huge), WireFrame::Garbled(_)));
    }
}
