//! `fewner-bench` — the benchmark harness that regenerates every table in
//! the paper's evaluation section.
//!
//! Binaries (`cargo run -p fewner-bench --release --bin <name>`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | dataset statistics |
//! | `table2` | intra-domain cross-type adaptation |
//! | `table3` | cross-domain intra-type adaptation (ACE2005) |
//! | `table4` | cross-domain cross-type adaptation |
//! | `table5` | ablations on NNE |
//! | `table6` | qualitative analysis |
//! | `timing` | §4.5.2 time-consumption analysis |
//!
//! All binaries accept `--scale smoke|small|paper`, `--episodes N` and
//! `--iterations N`; results are printed and written to `reports/*.json`.

#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    backbone_config, build_method, embedding_spec, evaluate_learner, evaluate_learner_scores,
    meta_config, run_cell, run_cell_or_nan, run_cell_scores, train_learner, Cell, Method, Scale,
    EVAL_SEED,
};

/// Writes a report JSON file under `reports/`, creating the directory.
pub fn write_report(name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("reports");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, json)?;
    Ok(path)
}
