//! `serve_load` — an open-loop load generator for `fewner serve`.
//!
//! Samples real N-way K-shot tasks from a corpus profile, then drives a
//! running daemon from concurrent client connections: the first request per
//! task carries an inline support set (adapt-on-miss), the rest are plain
//! predicts that should hit the φ-cache. Arrivals are paced by `--rate`
//! (per-client requests/sec) independent of completions — open loop — so
//! an overloaded server shows up as shed requests, not a slower generator.
//! (Each connection is synchronous NDJSON, so a response slower than the
//! period delays that client's schedule; add clients to keep pressure up.)
//!
//! ```text
//! serve_load --addr 127.0.0.1:4077 [--clients 4] [--requests 50]
//!            [--tasks 4] [--rate 0 (= as fast as possible)]
//!            [--scale 0.05] [--seed 42] [--shutdown true]
//!            [--deadline-ms 0 (= none)] [--retries 0] [--backoff-ms 10]
//!            [--arrivals 0 (= off)]
//! ```
//!
//! Reports p50/p99 request latency, tokens/sec, shed/failure counts, the
//! resilience tallies (retries, reconnects, deadline misses), and the
//! server's own counters (cache hits, queue depth) from the `stats` op.
//! Deadline misses and shed requests are reported separately from hard
//! failures and do not fail the run — only `failed > 0` exits non-zero.
//!
//! `--arrivals W` switches to the incremental-adaptation benchmark: each
//! task's support set arrives in `W` waves, and after every wave the two
//! online strategies are compared on the same daemon — `extend` (warm-start
//! the cached φ, few inner steps over the merged support) vs a full
//! re-adapt from scratch over everything seen so far (forced cold by using
//! a fresh task key per wave). Per wave it reports the mean latency of each
//! strategy plus the entity F1 each one's context reaches on the task's
//! query set — the latency/quality tradeoff of incremental serving.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::{EpisodeSampler, Task};
use fewner_serve::{Client, RetryClient, RetryPolicy, SupportSentence};
use fewner_util::Error;

struct Flags(HashMap<String, String>);

impl Flags {
    fn parse() -> Flags {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let (Some(key), Some(value)) = (key.strip_prefix("--"), it.next()) else {
                eprintln!(
                    "usage: serve_load --addr <ip:port> [--clients N] [--requests N] \
                           [--tasks N] [--rate RPS] [--scale F] [--seed N] [--shutdown true] \
                           [--deadline-ms MS] [--retries N] [--backoff-ms MS] [--arrivals W]"
                );
                std::process::exit(2);
            };
            map.insert(key.to_string(), value.clone());
        }
        Flags(map)
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.0
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// One client's tally.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    tokens: u64,
    ok: u64,
    shed: u64,
    deadline_missed: u64,
    failed: u64,
    retries: u64,
    reconnects: u64,
}

fn wire_support(task: &Task) -> Vec<SupportSentence> {
    task.support
        .iter()
        .map(|s| SupportSentence {
            tokens: s.tokens.clone(),
            tags: s.tags.clone(),
        })
        .collect()
}

fn run_client(
    addr: &str,
    id: usize,
    requests: usize,
    rate: f64,
    policy: &RetryPolicy,
    tasks: &[Task],
) -> Result<Tally, Error> {
    // Per-client jitter seed so retry backoffs don't synchronise.
    let mut client = RetryClient::new(addr, policy.clone().seed(policy.seed ^ id as u64));
    let mut tally = Tally::default();
    let mut adapted = vec![false; tasks.len()];
    let start = Instant::now();
    for i in 0..requests {
        if rate > 0.0 {
            // Open-loop pacing: request i is *scheduled* at i/rate seconds,
            // regardless of how long earlier requests took.
            let due = Duration::from_secs_f64(i as f64 / rate);
            if let Some(wait) = due.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
        }
        let ti = (id + i) % tasks.len();
        let task = &tasks[ti];
        let name = format!("task-{ti}");
        let sentences: Vec<Vec<String>> = task
            .query
            .iter()
            .cycle()
            .skip(i % task.query.len())
            .take(2)
            .map(|s| s.tokens.clone())
            .collect();
        let sent_tokens: u64 = sentences.iter().map(|s| s.len() as u64).sum();
        let t0 = Instant::now();
        let outcome = if adapted[ti] {
            client.predict("load", &name, &sentences)
        } else {
            client.predict_with_support("load", &name, &sentences, task.n_ways, wire_support(task))
        };
        let us = t0.elapsed().as_micros() as u64;
        match outcome {
            Ok(_) => {
                adapted[ti] = true;
                tally.ok += 1;
                tally.tokens += sent_tokens;
                tally.latencies_us.push(us);
            }
            Err(Error::Overloaded { .. }) => tally.shed += 1,
            Err(Error::DeadlineExceeded { .. }) => tally.deadline_missed += 1,
            Err(_) => tally.failed += 1,
        }
    }
    let stats = client.retry_stats();
    tally.retries = stats.retries;
    tally.reconnects = stats.reconnects;
    Ok(tally)
}

/// Splits a task's support set into `n` arrival waves, round-robin so
/// every wave carries a mix of classes.
fn waves(task: &Task, n: usize) -> Vec<Vec<SupportSentence>> {
    let all = wire_support(task);
    let n = n.clamp(1, all.len());
    let mut out: Vec<Vec<SupportSentence>> = vec![Vec::new(); n];
    for (i, s) in all.into_iter().enumerate() {
        out[i % n].push(s);
    }
    out
}

/// Entity F1 of the server's current context for `(tenant, name)` over the
/// task's query set.
fn f1_of(client: &mut Client, tenant: &str, name: &str, task: &Task) -> Result<f64, Error> {
    let sentences: Vec<Vec<String>> = task.query.iter().map(|s| s.tokens.clone()).collect();
    let preds = client.predict(tenant, name, &sentences)?;
    let mut counts = fewner_eval::F1Counts::default();
    for (pred, gold) in preds.iter().zip(&task.query) {
        let tags = pred
            .iter()
            .map(|t| fewner_text::Tag::parse(t))
            .collect::<fewner_util::Result<Vec<_>>>()?;
        counts.add_tags(&gold.tags, &tags);
    }
    Ok(counts.f1())
}

/// The incremental-adaptation benchmark: support arrives in waves, and
/// after each wave `extend` (warm incremental steps) is compared against a
/// forced full re-adapt over the cumulative support. Returns the number of
/// hard failures.
fn run_arrivals(addr: &str, tasks: &[Task], n_waves: usize) -> u64 {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("arrivals: connect failed: {e}");
            return 1;
        }
    };
    println!(
        "arrivals: {n_waves} waves x {} tasks, extend vs full re-adapt",
        tasks.len()
    );
    // Per wave, across tasks: summed latencies and F1s for each strategy.
    let mut ext_us = vec![0u64; n_waves];
    let mut full_us = vec![0u64; n_waves];
    let mut ext_f1 = vec![0.0f64; n_waves];
    let mut full_f1 = vec![0.0f64; n_waves];
    // Tasks with fewer support sentences than waves run fewer waves, so
    // per-wave means divide by the tasks that actually reached the wave.
    let mut ran = vec![0u64; n_waves];
    let mut failed = 0u64;
    for (ti, task) in tasks.iter().enumerate() {
        let arriving = waves(task, n_waves);
        let ext_name = format!("ext-{ti}");
        let mut cumulative: Vec<SupportSentence> = Vec::new();
        let mut revision = 0u32;
        for (w, wave) in arriving.iter().enumerate() {
            cumulative.extend(wave.iter().cloned());
            ran[w] += 1;

            // Incremental: the first wave adapts, later waves extend the
            // resident context in place.
            let t0 = Instant::now();
            let outcome = if w == 0 {
                client
                    .adapt("load", &ext_name, task.n_ways, wave.clone())
                    .map(|_| 1)
            } else {
                client
                    .extend("load", &ext_name, task.n_ways, wave.clone())
                    .map(|(rev, _)| rev)
            };
            ext_us[w] += t0.elapsed().as_micros() as u64;
            match outcome {
                Ok(rev) => revision = rev,
                Err(e) => {
                    eprintln!("arrivals: extend wave {w} failed: {e}");
                    failed += 1;
                    continue;
                }
            }

            // Full re-adapt: a fresh key per wave defeats the φ-cache, so
            // the complete inner loop runs over all support seen so far.
            let full_name = format!("full-{ti}-w{w}");
            let t0 = Instant::now();
            let outcome = client.adapt("load", &full_name, task.n_ways, cumulative.clone());
            full_us[w] += t0.elapsed().as_micros() as u64;
            if let Err(e) = outcome {
                eprintln!("arrivals: re-adapt wave {w} failed: {e}");
                failed += 1;
                continue;
            }

            match (
                f1_of(&mut client, "load", &ext_name, task),
                f1_of(&mut client, "load", &full_name, task),
            ) {
                (Ok(e), Ok(f)) => {
                    ext_f1[w] += e;
                    full_f1[w] += f;
                }
                (e, f) => {
                    for err in [e.err(), f.err()].into_iter().flatten() {
                        eprintln!("arrivals: scoring wave {w} failed: {err}");
                        failed += 1;
                    }
                }
            }
        }
        println!(
            "  task {ti}: context revision {revision} after {} waves",
            arriving.len()
        );
    }
    for w in 0..n_waves {
        let n = ran[w].max(1) as f64;
        let op = if w == 0 { "adapt " } else { "extend" };
        println!(
            "  wave {}: {op} {:7.1}ms vs re-adapt {:7.1}ms | F1 extend {:.3} vs re-adapt {:.3}",
            w + 1,
            ext_us[w] as f64 / n / 1000.0,
            full_us[w] as f64 / n / 1000.0,
            ext_f1[w] / n,
            full_f1[w] / n,
        );
    }
    failed
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1000.0
}

fn main() {
    let flags = Flags::parse();
    let Some(addr) = flags.0.get("addr").cloned() else {
        eprintln!("serve_load: --addr <ip:port> is required");
        std::process::exit(2);
    };
    let clients = flags.get("clients", 4usize).max(1);
    let requests = flags.get("requests", 50usize);
    let n_tasks = flags.get("tasks", 4usize).max(1);
    let rate = flags.get("rate", 0.0f64);
    let scale = flags.get("scale", 0.05f64);
    let seed = flags.get("seed", 42u64);
    let deadline_ms = flags.get("deadline-ms", 0u64);
    let retries = flags.get("retries", 0u32);
    let backoff_ms = flags.get("backoff-ms", 10u64);
    let mut policy = RetryPolicy::new()
        .max_retries(retries)
        .backoff_ms(backoff_ms, backoff_ms * 50)
        .seed(seed);
    if deadline_ms > 0 {
        policy = policy.deadline_ms(deadline_ms);
    }

    // Real episodic traffic: the same profile/split conventions as the CLI,
    // so the server's encoder knows these tokens.
    let data = DatasetProfile::genia().generate(scale).expect("corpus");
    let split = split_types(&data, (18, 8, 10), seed).expect("split");
    let sampler = EpisodeSampler::new(&split.test, 5, 1, 6).expect("sampler");
    let tasks = sampler.eval_set(0xE7A1, n_tasks).expect("tasks");

    let arrivals = flags.get("arrivals", 0usize);
    if arrivals > 0 {
        let failed = run_arrivals(&addr, &tasks, arrivals);
        if flags.get("shutdown", false) {
            match Client::connect(&addr).and_then(|mut c| c.shutdown()) {
                Ok(()) => println!("  sent shutdown"),
                Err(e) => eprintln!("  shutdown failed: {e}"),
            }
        }
        std::process::exit(if failed > 0 { 1 } else { 0 });
    }

    println!(
        "serve_load: {clients} clients x {requests} requests against {addr} ({n_tasks} tasks)"
    );
    let wall = Instant::now();
    let tallies: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let addr = addr.as_str();
                let tasks = tasks.as_slice();
                let policy = &policy;
                s.spawn(move || run_client(addr, id, requests, rate, policy, tasks))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(Ok(t)) => t,
                Ok(Err(e)) => {
                    eprintln!("client error: {e}");
                    Tally::default()
                }
                Err(_) => {
                    eprintln!("client panicked");
                    Tally::default()
                }
            })
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let shed: u64 = tallies.iter().map(|t| t.shed).sum();
    let deadline_missed: u64 = tallies.iter().map(|t| t.deadline_missed).sum();
    let failed: u64 = tallies.iter().map(|t| t.failed).sum();
    let tokens: u64 = tallies.iter().map(|t| t.tokens).sum();
    let client_retries: u64 = tallies.iter().map(|t| t.retries).sum();
    let reconnects: u64 = tallies.iter().map(|t| t.reconnects).sum();
    let total = ok + shed + deadline_missed + failed;

    println!(
        "  requests: {ok} ok, {shed} shed, {deadline_missed} deadline-missed, {failed} failed \
         in {elapsed:.2}s ({:.1} req/s)",
        total as f64 / elapsed
    );
    println!(
        "  latency: p50 {:.1}ms p99 {:.1}ms",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99)
    );
    println!(
        "  resilience: {client_retries} retries, {reconnects} reconnects, \
         deadline-miss rate {:.1}%",
        if total > 0 {
            100.0 * deadline_missed as f64 / total as f64
        } else {
            0.0
        }
    );
    println!(
        "  throughput: {tokens} tokens in {elapsed:.2}s ({:.1} tokens/sec)",
        tokens as f64 / elapsed
    );

    match Client::connect(&addr).and_then(|mut c| c.stats()) {
        Ok(counters) => {
            let rendered: Vec<String> = counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!("  server counters: {}", rendered.join(" "));
        }
        Err(e) => eprintln!("  (stats unavailable: {e})"),
    }

    if flags.get("shutdown", false) {
        match Client::connect(&addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => println!("  sent shutdown"),
            Err(e) => eprintln!("  shutdown failed: {e}"),
        }
    }

    if failed > 0 {
        std::process::exit(1);
    }
}
