//! Regenerates **Table 5**: the ablation study on NNE intra-domain
//! cross-type adaptation.
//!
//! Variants, as in the paper:
//! * conditioning method A (concatenation) instead of B (FiLM);
//! * removing the character CNN;
//! * more inner gradient steps during training;
//! * halving / doubling the φ dimensionality;
//! * training with 3 / 10 / 15 ways while always testing 5-way (these rows
//!   use the way-agnostic slot-shared CRF head; a slot-shared 5-way row is
//!   included as their reference point).

use fewner_bench::{
    backbone_config, embedding_spec, evaluate_learner, meta_config, train_learner, write_report,
    Cell, Scale,
};
use fewner_core::{Fewner, MetaConfig};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_eval::Table;
use fewner_models::{BackboneConfig, Conditioning, HeadKind, TokenEncoder};

struct Variant {
    name: &'static str,
    bb: BackboneConfig,
    meta: MetaConfig,
    train_ways: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let d = DatasetProfile::nne().generate(scale.corpus).expect("NNE");
    let split = split_types(&d, (52, 10, 15), 42).expect("split");
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);

    let base_bb = backbone_config(5, Conditioning::Film);
    let base_meta = meta_config();
    let slot_shared = HeadKind::SlotShared {
        slot_dim: 12,
        max_slots: 16,
    };

    let mut variants = vec![
        Variant {
            name: "FewNER (default)",
            bb: base_bb.clone(),
            meta: base_meta.clone(),
            train_ways: 5,
        },
        Variant {
            name: "Conditioning method A",
            bb: BackboneConfig {
                conditioning: Conditioning::ConcatInput,
                ..base_bb.clone()
            },
            meta: base_meta.clone(),
            train_ways: 5,
        },
        Variant {
            name: "Remove character CNN",
            bb: BackboneConfig {
                use_char_cnn: false,
                ..base_bb.clone()
            },
            meta: base_meta.clone(),
            train_ways: 5,
        },
    ];
    for steps in [4usize, 6, 8] {
        variants.push(Variant {
            name: match steps {
                4 => "Inner gradient steps: 4",
                6 => "Inner gradient steps: 6",
                _ => "Inner gradient steps: 8",
            },
            bb: base_bb.clone(),
            meta: MetaConfig {
                inner_steps_train: steps,
                ..base_meta.clone()
            },
            train_ways: 5,
        });
    }
    for phi in [12usize, 48] {
        variants.push(Variant {
            name: if phi == 12 {
                "Dimensions of phi: half"
            } else {
                "Dimensions of phi: double"
            },
            bb: BackboneConfig {
                phi_dim: phi,
                ..base_bb.clone()
            },
            meta: base_meta.clone(),
            train_ways: 5,
        });
    }
    variants.push(Variant {
        name: "Slot-shared head (5-way ref)",
        bb: BackboneConfig {
            head: slot_shared,
            ..base_bb.clone()
        },
        meta: base_meta.clone(),
        train_ways: 5,
    });
    for ways in [3usize, 10, 15] {
        variants.push(Variant {
            name: match ways {
                3 => "Training way: 3",
                10 => "Training way: 10",
                _ => "Training way: 15",
            },
            bb: BackboneConfig {
                head: slot_shared,
                ..base_bb.clone()
            },
            meta: base_meta.clone(),
            train_ways: ways,
        });
    }

    let mut table = Table::new(
        "Table 5: ablation study on NNE (tested 5-way)",
        vec!["1-shot".into(), "5-shot".into()],
    );
    for v in &variants {
        let mut cells = Vec::new();
        for k in [1usize, 5] {
            let train_cell = Cell {
                train: &split.train,
                test: &split.test,
                enc: &enc,
                n_ways: v.train_ways,
                k_shots: k,
            };
            let eval_cell = Cell {
                train: &split.train,
                test: &split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: k,
            };
            let mut learner = Fewner::new(v.bb.clone(), &enc, v.meta.clone()).expect("build");
            train_learner(&mut learner, &train_cell, &scale, &v.meta).expect("train");
            let f1 = evaluate_learner(&learner, &eval_cell, &scale).expect("eval");
            eprintln!("{} {k}-shot: {}", v.name, f1.as_percent());
            cells.push(f1.into());
        }
        table.push_row(v.name, cells);
    }
    println!("\n{}", table.render());
    let path = write_report("table5.json", &table.to_json()).expect("report");
    println!("wrote {}", path.display());
}
