//! Regenerates **Table 4**: cross-domain cross-type adaptation —
//! GENIA → BioNLP13CG, OntoNotes → BioNLP13CG, OntoNotes → FG-NER.
//! Training episodes come entirely from the source corpus; 20 % of the
//! target is held out for validation and the remaining 80 % is the test
//! pool (§4.4.1).

use fewner_bench::{embedding_spec, run_cell_or_nan, write_report, Cell, Method, Scale};
use fewner_corpus::{full_view, holdout_target, DatasetProfile};
use fewner_eval::Table;
use fewner_models::TokenEncoder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    // (source, target, label, target corpus multiplier) — the small target
    // corpora need a boost at reduced scales for 5-shot construction.
    let pairs = [
        (
            DatasetProfile::genia(),
            DatasetProfile::bionlp13cg(),
            "GENIA→BioNLP",
            4.0f64,
        ),
        (
            DatasetProfile::ontonotes(),
            DatasetProfile::bionlp13cg(),
            "Onto→BioNLP",
            4.0,
        ),
        (
            DatasetProfile::ontonotes(),
            DatasetProfile::fg_ner(),
            "Onto→FG-NER",
            25.0,
        ),
    ];

    let mut columns = Vec::new();
    for (_, _, name, _) in &pairs {
        columns.push(format!("{name} 1-shot"));
        columns.push(format!("{name} 5-shot"));
    }
    let mut table = Table::new(
        "Table 4: cross-domain cross-type adaptation (5-way)",
        columns,
    );
    let mut per_method: Vec<(Method, Vec<fewner_eval::Cell>)> =
        Method::all().into_iter().map(|m| (m, Vec::new())).collect();

    for (src_profile, dst_profile, name, mult) in &pairs {
        let source = src_profile.generate(scale.corpus).expect("source");
        let target = dst_profile
            .generate((scale.corpus * mult).min(1.0))
            .expect("target");
        let train = full_view(&source);
        let (_val, test) = holdout_target(&target, 11).expect("holdout");
        let enc = TokenEncoder::build(&[&source, &target], &embedding_spec(), 4);
        for k in [1usize, 5] {
            let cell = Cell {
                train: &train,
                test: &test,
                enc: &enc,
                n_ways: 5,
                k_shots: k,
            };
            for (method, cells) in per_method.iter_mut() {
                let t0 = std::time::Instant::now();
                let f1 = run_cell_or_nan(*method, &cell, &scale);
                eprintln!(
                    "{name} {}-shot {:>9}: {}  ({:.0}s)",
                    k,
                    method.name(),
                    f1.as_percent(),
                    t0.elapsed().as_secs_f64()
                );
                cells.push(f1.into());
            }
        }
    }
    for (method, cells) in per_method {
        table.push_row(method.name(), cells);
    }
    println!("\n{}", table.render());
    let path = write_report("table4.json", &table.to_json()).expect("report");
    println!("wrote {}", path.display());
}
