//! Regenerates **Table 1**: dataset statistics (genre, #types, #sentences,
//! #mentions) for the six synthetic corpus profiles.
//!
//! At `--scale paper` the sentence counts match Table 1 exactly and the
//! mention counts match via the calibrated densities; smaller scales shrink
//! sentence counts proportionally.

use fewner_bench::{write_report, Scale};
use fewner_corpus::{AceDomain, DatasetProfile};
use fewner_util::{json, Json};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    println!(
        "Table 1: dataset statistics (corpus scale {})\n",
        scale.corpus
    );
    println!(
        "{:<12} {:>10} {:>8} {:>11} {:>10} {:>14}",
        "Dataset", "Genre", "#Types", "#Sentences", "#Mentions", "Paper #Sent"
    );

    let mut rows = Vec::new();
    let profiles = vec![
        DatasetProfile::nne(),
        DatasetProfile::fg_ner(),
        DatasetProfile::genia(),
        DatasetProfile::ontonotes(),
        DatasetProfile::bionlp13cg(),
    ];
    for p in profiles {
        let d = p.generate(scale.corpus).expect("generation");
        let s = d.stats();
        println!(
            "{:<12} {:>10} {:>8} {:>11} {:>10} {:>14}",
            p.name,
            d.genre.name(),
            s.types,
            s.sentences,
            s.mentions,
            p.n_sentences
        );
        rows.push(json!({
            "dataset": p.name, "genre": d.genre.name(), "types": s.types,
            "sentences": s.sentences, "mentions": s.mentions,
            "paper_sentences": p.n_sentences,
        }));
    }
    // ACE2005 is the union of its six domains.
    let mut total = (0usize, 0usize);
    for dom in AceDomain::ALL {
        let p = DatasetProfile::ace2005(dom);
        let d = p.generate(scale.corpus).expect("generation");
        let s = d.stats();
        total.0 += s.sentences;
        total.1 += s.mentions;
    }
    println!(
        "{:<12} {:>10} {:>8} {:>11} {:>10} {:>14}",
        "ACE2005", "Various", 54, total.0, total.1, 17_399
    );
    rows.push(json!({
        "dataset": "ACE2005", "genre": "Various", "types": 54,
        "sentences": total.0, "mentions": total.1, "paper_sentences": 17_399,
    }));

    let path = write_report("table1.json", &Json::Arr(rows).to_string_pretty()).expect("report");
    println!("\nwrote {}", path.display());
}
