//! Regenerates **Table 3**: cross-domain intra-type adaptation on ACE2005
//! (54 fine-grained types shared across domains; nested annotations
//! flattened to the innermost span). Three adaptations: BC → UN,
//! BN → CTS, NW → WL; 8/1/1 sentence splits per domain (§4.3.1).

use fewner_bench::{embedding_spec, run_cell_or_nan, write_report, Cell, Method, Scale};
use fewner_corpus::{split_sentences, AceDomain, DatasetProfile};
use fewner_eval::Table;
use fewner_models::TokenEncoder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let pairs = [
        (AceDomain::Bc, AceDomain::Un, "BC→UN"),
        (AceDomain::Bn, AceDomain::Cts, "BN→CTS"),
        (AceDomain::Nw, AceDomain::Wl, "NW→WL"),
    ];

    let mut columns = Vec::new();
    for (_, _, name) in &pairs {
        columns.push(format!("{name} 1-shot"));
        columns.push(format!("{name} 5-shot"));
    }
    let mut table = Table::new(
        "Table 3: cross-domain intra-type adaptation on ACE2005 (5-way)",
        columns,
    );
    let mut per_method: Vec<(Method, Vec<fewner_eval::Cell>)> =
        Method::all().into_iter().map(|m| (m, Vec::new())).collect();

    for (src, dst, name) in &pairs {
        // ACE domains hold only ~2–4k sentences at full scale; a ×25
        // multiplier keeps reduced-scale splits rich enough for 5-shot
        // episode construction.
        let ace_scale = (scale.corpus * 25.0).min(1.0);
        let source = DatasetProfile::ace2005(*src)
            .generate(ace_scale)
            .expect("source generation");
        let target = DatasetProfile::ace2005(*dst)
            .generate(ace_scale)
            .expect("target generation");
        // 8/1/1 per domain; train on the source train portion, evaluate on
        // the target test portion. Types are shared (intra-type).
        let src_split = split_sentences(&source, (8.0, 1.0, 1.0), 7).expect("split");
        let dst_split = split_sentences(&target, (8.0, 1.0, 1.0), 7).expect("split");
        let enc = TokenEncoder::build(&[&source, &target], &embedding_spec(), 4);
        for k in [1usize, 5] {
            let cell = Cell {
                train: &src_split.train,
                test: &dst_split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: k,
            };
            for (method, cells) in per_method.iter_mut() {
                let t0 = std::time::Instant::now();
                let f1 = run_cell_or_nan(*method, &cell, &scale);
                eprintln!(
                    "{name} {}-shot {:>9}: {}  ({:.0}s)",
                    k,
                    method.name(),
                    f1.as_percent(),
                    t0.elapsed().as_secs_f64()
                );
                cells.push(f1.into());
            }
        }
    }
    for (method, cells) in per_method {
        table.push_row(method.name(), cells);
    }
    println!("\n{}", table.render());
    let path = write_report("table3.json", &table.to_json()).expect("report");
    println!("wrote {}", path.display());
}
