//! Regenerates **Table 6**: qualitative analysis — positive and negative
//! 5-way 1-shot predictions produced by FEWNER across the three adaptation
//! scenarios, printed in the paper's bracketed-entity notation.

use fewner_bench::{
    backbone_config, embedding_spec, meta_config, train_learner, write_report, Cell, Scale,
};
use fewner_core::{EpisodicLearner, Fewner};
use fewner_corpus::{full_view, holdout_target, split_types, DatasetProfile};
use fewner_eval::{qualitative_line, DetectionVsTyping, ErrorBreakdown};
use fewner_models::{Conditioning, TokenEncoder};
use fewner_text::Tag;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut report = Vec::new();

    // Scenario 1: intra-domain cross-type (GENIA → GENIA novel types).
    {
        let d = DatasetProfile::genia()
            .generate(scale.corpus)
            .expect("GENIA");
        let split = split_types(&d, (18, 8, 10), 42).expect("split");
        let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
        run_scenario(
            "GENIA → GENIA",
            &split.train,
            &split.test,
            &enc,
            &d,
            &scale,
            &mut report,
        );
    }
    // Scenario 2: cross-domain cross-type (OntoNotes → BioNLP13CG).
    {
        let src = DatasetProfile::ontonotes()
            .generate(scale.corpus)
            .expect("Onto");
        let dst = DatasetProfile::bionlp13cg()
            .generate(scale.corpus)
            .expect("BioNLP");
        let train = full_view(&src);
        let (_, test) = holdout_target(&dst, 11).expect("holdout");
        let enc = TokenEncoder::build(&[&src, &dst], &embedding_spec(), 4);
        run_scenario(
            "OntoNotes → BioNLP13CG",
            &train,
            &test,
            &enc,
            &dst,
            &scale,
            &mut report,
        );
    }

    let text = report.join("\n");
    println!("{text}");
    let path = write_report("table6.txt", &text).expect("report");
    println!("\nwrote {}", path.display());
}

fn run_scenario(
    name: &str,
    train: &fewner_corpus::SplitView,
    test: &fewner_corpus::SplitView,
    enc: &TokenEncoder,
    target: &fewner_corpus::Dataset,
    scale: &Scale,
    report: &mut Vec<String>,
) {
    let meta = meta_config();
    let mut learner =
        Fewner::new(backbone_config(5, Conditioning::Film), enc, meta.clone()).expect("build");
    let cell = Cell {
        train,
        test,
        enc,
        n_ways: 5,
        k_shots: 1,
    };
    train_learner(&mut learner, &cell, scale, &meta).expect("train");

    let sampler =
        fewner_episode::EpisodeSampler::new(test, 5, 1, scale.query_size).expect("sampler");
    let tasks = sampler
        .eval_set(fewner_bench::EVAL_SEED, 3)
        .expect("eval set");
    report.push(format!("== {name} (5-way 1-shot) =="));
    let mut breakdown = ErrorBreakdown::default();
    let mut det = DetectionVsTyping::default();
    for task in &tasks {
        let preds = learner.adapt_and_predict(task, enc).expect("predict");
        let tags = task.tag_set();
        for (i, (pred_idx, sent)) in preds.iter().zip(&task.query).enumerate() {
            let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
            breakdown.add_tags(&sent.tags, &pred);
            det.add_tags(&sent.tags, &pred);
            if i < 2 {
                report.push(qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                    target.type_name(task.slot_types[slot]).to_string()
                }));
            }
        }
    }
    // §4.5.3: errors should be dominated by boundaries/misses, not typing.
    report.push(format!("error breakdown: {}", breakdown.render()));
    report.push(format!(
        "strict F1 {:.2}% vs detection-only F1 {:.2}% (typing gap {:.2})",
        det.strict.f1() * 100.0,
        det.detection.f1() * 100.0,
        det.typing_gap()
    ));
    report.push(String::new());
}
