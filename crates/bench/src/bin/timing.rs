//! Regenerates the **§4.5.2 time-consumption analysis**: per-inner-loop
//! step time, full outer-loop (meta-batch) time, test-time adaptation time
//! and per-task evaluation time on the NNE intra-domain configuration, for
//! 5-way 1-shot and 5-way 5-shot; plus the linear-scaling check in the
//! support-set size.
//!
//! Hardware differs from the paper (CPU vs V100), so the claims under test
//! are the *relative* ones: adaptation ≪ training, inner-step cost roughly
//! independent of K, linear growth with data size.

use std::time::Instant;

use fewner_bench::{backbone_config, embedding_spec, meta_config, Scale, EVAL_SEED};
use fewner_core::{EpisodicLearner, Fewner, Maml, ParallelTrainer};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::EpisodeSampler;
use fewner_eval::{measure_predictions, Throughput};
use fewner_models::{encode_task, Conditioning, TokenEncoder};
use fewner_tensor::Graph;
use fewner_util::Rng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let d = DatasetProfile::nne().generate(scale.corpus).expect("NNE");
    let split = split_types(&d, (52, 10, 15), 42).expect("split");
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
    let meta = meta_config();

    println!("Timing analysis (§4.5.2), NNE intra-domain, CPU\n");
    let mut lines = Vec::new();
    for k in [1usize, 5] {
        let learner =
            Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta.clone()).expect("build");
        let sampler = EpisodeSampler::new(&split.train, 5, k, scale.query_size).expect("sampler");
        let mut rng = Rng::new(3);
        let tasks: Vec<_> = (0..meta.meta_batch)
            .map(|_| sampler.sample(&mut rng).unwrap())
            .collect();

        // Inner-loop step time: one φ gradient step on a support set.
        let (support, _) = encode_task(&enc, &tasks[0]);
        let tags = tasks[0].tag_set();
        let t0 = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            learner.adapt_context(&support, &tags, 1).unwrap();
        }
        let inner_step = t0.elapsed().as_secs_f64() / reps as f64;

        // Outer loop: one full meta-batch, serially and fanned over worker
        // threads (fresh learners so the runs are comparable — both start
        // from the same initialisation and consume the same step seed).
        let mut trainee =
            Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta.clone()).expect("build");
        let t0 = Instant::now();
        trainee.meta_step(&tasks, &enc).unwrap();
        let outer = t0.elapsed().as_secs_f64();

        let pool = ParallelTrainer::new(4);
        let mut trainee =
            Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta.clone()).expect("build");
        let t0 = Instant::now();
        pool.meta_step(&mut trainee, &tasks, &enc).unwrap();
        let outer_parallel = t0.elapsed().as_secs_f64();

        // Test-time adaptation + evaluation per task.
        let eval_sampler =
            EpisodeSampler::new(&split.test, 5, k, scale.query_size).expect("sampler");
        let eval_tasks = eval_sampler.eval_set(EVAL_SEED, 5).expect("eval set");
        let t0 = Instant::now();
        for task in &eval_tasks {
            let (support, _) = encode_task(&enc, task);
            learner
                .adapt_context(&support, &task.tag_set(), meta.inner_steps_test)
                .unwrap();
        }
        let adapt = t0.elapsed().as_secs_f64() / eval_tasks.len() as f64;
        let t0 = Instant::now();
        for task in &eval_tasks {
            learner.adapt_and_predict(task, &enc).unwrap();
        }
        let eval_per_task = t0.elapsed().as_secs_f64() / eval_tasks.len() as f64;

        let line = format!(
            "5-way {k}-shot: inner step {:.4}s | outer meta-batch {:.2}s serial / {:.2}s on {} threads | adapt/task {:.3}s | evaluate/task {:.3}s",
            inner_step, outer, outer_parallel, pool.threads(), adapt, eval_per_task
        );
        println!("{line}");
        lines.push(line);
    }

    // FEWNER vs MAML adaptation cost — the paper's efficiency argument:
    // FEWNER updates |φ| scalars per step, MAML the whole network.
    println!("\nAdaptation cost, FEWNER vs MAML (5-way 1-shot, per task):");
    {
        let fewner =
            Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta.clone()).expect("build");
        let maml =
            Maml::new(backbone_config(5, Conditioning::None), &enc, meta.clone()).expect("build");
        let eval_sampler =
            EpisodeSampler::new(&split.test, 5, 1, scale.query_size).expect("sampler");
        let eval_tasks = eval_sampler.eval_set(EVAL_SEED, 4).expect("eval set");
        for (name, learner) in [
            ("FewNER", &fewner as &dyn EpisodicLearner),
            ("MAML", &maml as &dyn EpisodicLearner),
        ] {
            let t0 = Instant::now();
            for task in &eval_tasks {
                learner.adapt_and_predict(task, &enc).unwrap();
            }
            let per_task = t0.elapsed().as_secs_f64() / eval_tasks.len() as f64;
            let line = format!("  {name:<7} adapt+predict: {per_task:.3}s / task");
            println!("{line}");
            lines.push(line);
        }
        let line = format!(
            "  adapted scalars: FEWNER {} vs MAML {}",
            fewner.backbone.config().phi_total(),
            maml.theta.num_scalars()
        );
        println!("{line}");
        lines.push(line);
    }

    // Inference throughput: the serving path's gradient-free executor
    // (`decode_task` on `Infer`, context hoisted per task) vs the tape's
    // full forward (`batch_loss` on an eval-mode `Graph`) over the same
    // adapted task — the unit `fewner predict` reports.
    println!("\nInference throughput (5-way 1-shot query sweep, tape vs Infer):");
    {
        let learner = Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta_config())
            .expect("build");
        let eval_sampler =
            EpisodeSampler::new(&split.test, 5, 1, scale.query_size).expect("sampler");
        let task = eval_sampler
            .eval_set(EVAL_SEED, 1)
            .expect("eval set")
            .remove(0);
        let (support, query) = encode_task(&enc, &task);
        let tags = task.tag_set();
        let (phi_store, phi_id, _) = learner
            .adapt_context(&support, &tags, meta_config().inner_steps_test)
            .expect("adapt");
        let reps = 30;

        let mut infer_t = Throughput::default();
        for _ in 0..reps {
            let (paths, t) = measure_predictions(|| {
                Ok(learner.backbone.decode_task(
                    &learner.theta,
                    Some((&phi_store, phi_id)),
                    query.iter().map(|(s, _)| s),
                    &tags,
                ))
            })
            .expect("decode");
            std::hint::black_box(paths);
            infer_t.merge(&t);
        }

        let tokens: usize = query.iter().map(|(s, _)| s.len()).sum();
        let t0 = Instant::now();
        for _ in 0..reps {
            let g = Graph::eval();
            let phi = g.param(&phi_store, phi_id);
            let mut rng = Rng::new(0);
            let loss =
                learner
                    .backbone
                    .batch_loss(&g, &learner.theta, Some(phi), &query, &tags, &mut rng);
            std::hint::black_box(g.value(loss).scalar_value());
        }
        let tape_t = Throughput {
            tokens: tokens * reps,
            sentences: query.len() * reps,
            seconds: t0.elapsed().as_secs_f64(),
        };

        for (name, t) in [
            ("Infer decode_task", &infer_t),
            ("tape batch forward", &tape_t),
        ] {
            let line = format!("  {name:<20} {}", t.render());
            println!("{line}");
            lines.push(line);
        }
    }

    // Linearity in data size: adaptation time vs support-set multiples.
    println!("\nLinearity check (inner-loop time vs support sentences):");
    let learner = Fewner::new(backbone_config(5, Conditioning::Film), &enc, meta).expect("build");
    let sampler = EpisodeSampler::new(&split.train, 5, 1, scale.query_size).expect("sampler");
    let task = sampler.sample(&mut Rng::new(4)).unwrap();
    let (support, _) = encode_task(&enc, &task);
    let tags = task.tag_set();
    for mult in [1usize, 2, 4] {
        let big: Vec<_> = support
            .iter()
            .cycle()
            .take(support.len() * mult)
            .cloned()
            .collect();
        let t0 = Instant::now();
        for _ in 0..5 {
            learner.adapt_context(&big, &tags, 1).unwrap();
        }
        let secs = t0.elapsed().as_secs_f64() / 5.0;
        let line = format!("  {} sentences: {:.4}s / inner step", big.len(), secs);
        println!("{line}");
        lines.push(line);
    }
    let path = fewner_bench::write_report("timing.txt", &lines.join("\n")).expect("report");
    println!("\nwrote {}", path.display());
}
