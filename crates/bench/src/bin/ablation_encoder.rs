//! Architectural-choice analysis (paper §1, §3.2.2): the backbone is
//! "model-agnostic"; the BiGRU was chosen for computational cost. This
//! binary compares FEWNER with a BiGRU vs a BiLSTM context encoder on the
//! GENIA intra-domain cell — same θ/φ mechanics, same episodes.

use std::time::Instant;

use fewner_bench::{
    backbone_config, embedding_spec, evaluate_learner, meta_config, train_learner, write_report,
    Cell, Scale,
};
use fewner_core::Fewner;
use fewner_corpus::{split_types, DatasetProfile};
use fewner_models::{BackboneConfig, Conditioning, EncoderKind, TokenEncoder};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let d = DatasetProfile::genia()
        .generate(scale.corpus)
        .expect("GENIA");
    let split = split_types(&d, (18, 8, 10), 42).expect("split");
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);

    let mut lines = vec!["Encoder ablation, GENIA intra-domain 5-way:".to_string()];
    for (name, kind) in [
        ("BiGRU", EncoderKind::BiGru),
        ("BiLSTM", EncoderKind::BiLstm),
    ] {
        for k in [1usize, 5] {
            let bb = BackboneConfig {
                encoder: kind,
                ..backbone_config(5, Conditioning::Film)
            };
            let meta = meta_config();
            let mut learner = Fewner::new(bb, &enc, meta.clone()).expect("build");
            let cell = Cell {
                train: &split.train,
                test: &split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: k,
            };
            let t0 = Instant::now();
            train_learner(&mut learner, &cell, &scale, &meta).expect("train");
            let train_secs = t0.elapsed().as_secs_f64();
            let f1 = evaluate_learner(&learner, &cell, &scale).expect("eval");
            let line = format!(
                "  {name:<6} {k}-shot: F1 {}  (train {train_secs:.0}s)",
                f1.as_percent()
            );
            println!("{line}");
            lines.push(line);
        }
    }
    let path = write_report("ablation_encoder.txt", &lines.join("\n")).expect("report");
    println!("wrote {}", path.display());
}
