//! Quick calibration: one intra-domain cross-type cell (GENIA profile),
//! all methods, small scale — prints F1 per method to sanity-check the
//! reproduction shape before running the full tables.

use fewner_bench::{embedding_spec, run_cell, Cell, Method, Scale};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_models::TokenEncoder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let d = DatasetProfile::genia().generate(scale.corpus).unwrap();
    let split = split_types(&d, (18, 8, 10), 42).unwrap();
    eprintln!(
        "corpus: {} sentences; train {} / test {} sentences",
        d.sentences.len(),
        split.train.len(),
        split.test.len()
    );
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
    for k in [1usize, 5] {
        let cell = Cell {
            train: &split.train,
            test: &split.test,
            enc: &enc,
            n_ways: 5,
            k_shots: k,
        };
        for m in [
            Method::FineTune,
            Method::ProtoNet,
            Method::Maml,
            Method::Snail,
            Method::FewNer,
            Method::Lm(fewner_models::LmFlavor::Bert),
        ] {
            let t0 = std::time::Instant::now();
            let f1 = run_cell(m, &cell, &scale).unwrap();
            println!(
                "{}-shot {:>9}: {}  ({:.1}s)",
                k,
                m.name(),
                f1.as_percent(),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
