//! Regenerates **Table 2**: intra-domain cross-type adaptation on NNE,
//! FG-NER and GENIA — 5-way 1-shot and 5-shot, all ten methods, average
//! episode F1 ± 95 % CI on the seed-fixed evaluation task set.
//!
//! Type splits follow §4.2.1: 52/10/15 (NNE), 163/15/20 (FG-NER),
//! 18/8/10 (GENIA); test types never appear during training.

use fewner_bench::{embedding_spec, run_cell_scores, write_report, Cell, Method, Scale};
use fewner_corpus::{split_types, DatasetProfile};
use fewner_eval::paired_compare;
use fewner_eval::Table;
use fewner_models::TokenEncoder;
use fewner_util::ci95;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    // Corpus multipliers keep every dataset's *test split* big enough for
    // 5-shot episode construction at reduced scales (FG-NER has only ~20
    // sentences per test type at 4 % scale otherwise).
    let datasets = [
        (DatasetProfile::nne(), (52usize, 10usize, 15usize), 2.0f64),
        (DatasetProfile::fg_ner(), (163, 15, 20), 25.0),
        (DatasetProfile::genia(), (18, 8, 10), 1.0),
    ];

    let mut columns = Vec::new();
    for (p, _, _) in &datasets {
        columns.push(format!("{} 1-shot", p.name));
        columns.push(format!("{} 5-shot", p.name));
    }
    let mut table = Table::new(
        "Table 2: intra-domain cross-type adaptation (5-way)",
        columns,
    );

    // Per method: table cells plus the per-episode scores behind them
    // (needed for the paired significance tests the paper reports).
    let mut per_method: Vec<(Method, Vec<fewner_eval::Cell>, Vec<Vec<f64>>)> = Method::all()
        .into_iter()
        .map(|m| (m, Vec::new(), Vec::new()))
        .collect();

    for (profile, counts, mult) in &datasets {
        let d = profile
            .generate((scale.corpus * mult).min(1.0))
            .expect("generation");
        let split = split_types(&d, *counts, 42).expect("split");
        let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
        for k in [1usize, 5] {
            let cell = Cell {
                train: &split.train,
                test: &split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: k,
            };
            for (method, cells, scores) in per_method.iter_mut() {
                let t0 = std::time::Instant::now();
                let episode_scores = run_cell_scores(*method, &cell, &scale);
                let f1 = ci95(&episode_scores);
                eprintln!(
                    "{} {}-shot {:>9}: {}  ({:.0}s)",
                    profile.name,
                    k,
                    method.name(),
                    f1.as_percent(),
                    t0.elapsed().as_secs_f64()
                );
                cells.push(f1.into());
                scores.push(episode_scores);
            }
        }
    }
    let fewner_scores = per_method
        .iter()
        .find(|(m, _, _)| *m == Method::FewNer)
        .map(|(_, _, s)| s.clone())
        .expect("FewNER row");
    for (method, cells, _) in &per_method {
        table.push_row(method.name(), cells.clone());
    }
    println!("\n{}", table.render());

    // Paired significance: FEWNER vs every baseline, per column (paper's
    // "significant margins" claim, testable because episodes are shared).
    println!("Paired significance (FewNER − baseline), p < 0.05 marked *:");
    for (method, _, scores) in &per_method {
        if *method == Method::FewNer {
            continue;
        }
        let mut line = format!("  vs {:>9}:", method.name());
        for (col, baseline) in scores.iter().enumerate() {
            if baseline.len() != fewner_scores[col].len() || baseline.len() < 2 {
                line.push_str("      n/a");
                continue;
            }
            match paired_compare(&fewner_scores[col], baseline, 17) {
                Ok(c) => {
                    line.push_str(&format!(
                        " {:+5.1}{}",
                        c.mean_diff * 100.0,
                        if c.significant_at(0.05) { "*" } else { " " }
                    ));
                }
                Err(_) => line.push_str("      n/a"),
            }
        }
        println!("{line}");
    }
    let path = write_report("table2.json", &table.to_json()).expect("report");
    println!("wrote {}", path.display());
}
