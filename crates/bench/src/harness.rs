//! The experiment harness shared by every table binary and bench.
//!
//! One paper table cell = (method, training split, test split, N, K):
//! meta-train the method on episodes from the training split, then score it
//! on the seed-fixed evaluation episodes from the test split. [`Scale`]
//! shrinks corpus size / iteration count / episode count uniformly so the
//! same code runs as a smoke test, a laptop run, or a paper-scale run.

use fewner_core::{
    EpisodicLearner, Fewner, FineTuneLearner, FrozenLmLearner, Maml, MetaConfig, ProtoLearner,
    SnailLearner, TrainConfig,
};
use fewner_corpus::SplitView;
use fewner_episode::EpisodeSampler;
use fewner_models::{BackboneConfig, Conditioning, HeadKind, LmFlavor, SnailConfig, TokenEncoder};
use fewner_util::{MeanCi, Result};

/// Evaluation seed fixed across methods (paper §4.2.1).
pub const EVAL_SEED: u64 = 0xE7A1;

/// How big to run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Corpus scale (1.0 = Table 1 sizes).
    pub corpus: f64,
    /// Meta-training iterations.
    pub iterations: usize,
    /// Evaluation episodes per cell (paper: 1000).
    pub episodes: usize,
    /// Query sentences per task.
    pub query_size: usize,
}

impl Scale {
    /// Seconds-level smoke scale for criterion benches and CI.
    pub fn smoke() -> Scale {
        Scale {
            corpus: 0.01,
            iterations: 4,
            episodes: 3,
            query_size: 4,
        }
    }

    /// Minutes-level scale; the default for the table binaries.
    pub fn small() -> Scale {
        Scale {
            corpus: 0.04,
            iterations: 300,
            episodes: 30,
            query_size: 6,
        }
    }

    /// The paper's scale (hours per table on a laptop).
    pub fn paper() -> Scale {
        Scale {
            corpus: 1.0,
            iterations: 2500,
            episodes: 1000,
            query_size: 10,
        }
    }

    /// Parses `--scale smoke|small|paper` plus `--episodes N` /
    /// `--iterations N` overrides from CLI arguments.
    pub fn from_args(args: &[String]) -> Scale {
        let mut scale = Scale::small();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => match it.next().map(String::as_str) {
                    Some("smoke") => scale = Scale::smoke(),
                    Some("small") => scale = Scale::small(),
                    Some("paper") | Some("paper-scale") => scale = Scale::paper(),
                    other => panic!("unknown scale {other:?}"),
                },
                "--paper-scale" => scale = Scale::paper(),
                "--episodes" => {
                    scale.episodes = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--episodes N");
                }
                "--iterations" => {
                    scale.iterations = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--iterations N");
                }
                _ => {}
            }
        }
        scale
    }
}

/// The ten methods of Tables 2–4, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GPT2 / Flair / ELMo / BERT / XLNet substitutes.
    Lm(LmFlavor),
    /// Conventional training + full fine-tune.
    FineTune,
    /// Prototypical networks.
    ProtoNet,
    /// First-order MAML.
    Maml,
    /// SNAIL.
    Snail,
    /// Ours.
    FewNer,
}

impl Method {
    /// All ten methods in the paper's table order.
    pub fn all() -> Vec<Method> {
        let mut v: Vec<Method> = LmFlavor::ALL.into_iter().map(Method::Lm).collect();
        v.extend([
            Method::FineTune,
            Method::ProtoNet,
            Method::Maml,
            Method::Snail,
            Method::FewNer,
        ]);
        v
    }

    /// The static-representation subset (lower half of the tables).
    pub fn static_group() -> Vec<Method> {
        vec![
            Method::FineTune,
            Method::ProtoNet,
            Method::Maml,
            Method::Snail,
            Method::FewNer,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Lm(f) => f.name(),
            Method::FineTune => "FineTune",
            Method::ProtoNet => "ProtoNet",
            Method::Maml => "MAML",
            Method::Snail => "SNAIL",
            Method::FewNer => "FewNER",
        }
    }
}

/// Scaled-down backbone matched to the harness encoder spec.
pub fn backbone_config(n_ways: usize, conditioning: Conditioning) -> BackboneConfig {
    BackboneConfig {
        word_dim: 32,
        char_dim: 10,
        char_filters: 8,
        char_widths: vec![2, 3],
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        conditioning,
        dropout: 0.2,
        use_char_cnn: true,
        encoder: fewner_models::backbone::EncoderKind::BiGru,
        head: HeadKind::Dense { n_ways },
    }
}

/// The embedding spec matching [`backbone_config`].
pub fn embedding_spec() -> fewner_text::embed::EmbeddingSpec {
    fewner_text::embed::EmbeddingSpec {
        dim: 32,
        ..fewner_text::embed::EmbeddingSpec::default()
    }
}

/// Meta-configuration used by the harness (paper values except the meta
/// learning rate, raised for the shorter schedules).
pub fn meta_config() -> MetaConfig {
    MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    }
}

/// Builds a learner for `method`.
pub fn build_method(
    method: Method,
    enc: &TokenEncoder,
    n_ways: usize,
    meta: &MetaConfig,
) -> Result<Box<dyn EpisodicLearner + Sync>> {
    let cond_free = backbone_config(n_ways, Conditioning::None);
    // The paper grid-searches hyper-parameters per method (§4.1.3). The
    // harness inner LR (0.25) is calibrated for FEWNER's zero-initialised
    // low-dimensional φ; full-network inner loops (MAML, FineTune's
    // test-time fine-tuning) are stable at the paper's α = 0.1.
    let full_net_meta = MetaConfig {
        inner_lr: 0.1,
        ..meta.clone()
    };
    Ok(match method {
        Method::Lm(flavor) => Box::new(FrozenLmLearner::new(flavor, enc, n_ways, full_net_meta)?),
        Method::FineTune => Box::new(FineTuneLearner::new(cond_free, enc, full_net_meta)?),
        Method::ProtoNet => Box::new(ProtoLearner::new(cond_free, enc, meta.clone())?),
        Method::Maml => Box::new(Maml::new(cond_free, enc, full_net_meta)?),
        Method::Snail => Box::new(SnailLearner::new(
            cond_free,
            SnailConfig::default_for(n_ways),
            enc,
            meta.clone(),
        )?),
        Method::FewNer => Box::new(Fewner::new(
            backbone_config(n_ways, Conditioning::Film),
            enc,
            meta.clone(),
        )?),
    })
}

/// One table cell: train on `train`, evaluate on `test`.
pub struct Cell<'a> {
    /// Training split.
    pub train: &'a SplitView,
    /// Held-out split (novel types and/or novel domain).
    pub test: &'a SplitView,
    /// Shared token encoder for the experiment.
    pub enc: &'a TokenEncoder,
    /// N.
    pub n_ways: usize,
    /// K.
    pub k_shots: usize,
}

/// Like [`run_cell`] but degrades gracefully: an unconstructible cell
/// (e.g. a split too starved for K-shot tasks at a tiny scale) yields an
/// empty `NaN` statistic instead of aborting a multi-hour table run.
pub fn run_cell_or_nan(method: Method, cell: &Cell<'_>, scale: &Scale) -> MeanCi {
    match run_cell(method, cell, scale) {
        Ok(score) => score,
        Err(e) => {
            eprintln!("    [cell skipped: {e}]");
            MeanCi {
                mean: f64::NAN,
                ci95: 0.0,
                n: 0,
            }
        }
    }
}

/// Trains `method` and returns its mean episode F1 ± CI on the cell.
pub fn run_cell(method: Method, cell: &Cell<'_>, scale: &Scale) -> Result<MeanCi> {
    let meta = meta_config();
    let mut learner = build_method(method, cell.enc, cell.n_ways, &meta)?;
    train_learner(learner.as_mut(), cell, scale, &meta)?;
    evaluate_learner(learner.as_ref(), cell, scale)
}

/// Meta-trains an already-built learner on the cell's training split.
pub fn train_learner(
    learner: &mut (dyn EpisodicLearner + Sync),
    cell: &Cell<'_>,
    scale: &Scale,
    meta: &MetaConfig,
) -> Result<()> {
    // threads(0) = all available cores; meta-gradients reduce in fixed
    // task-index order, so table numbers are identical at any thread count
    // (pin with FEWNER_THREADS=1 to verify).
    let cfg = TrainConfig::new(cell.n_ways, cell.k_shots)
        .iterations(scale.iterations)
        .query_size(scale.query_size)
        .seed(meta.seed ^ 0x7271)
        .threads(0);
    fewner_core::Trainer::new().train(learner, cell.train, cell.enc, meta, &cfg)?;
    Ok(())
}

/// Scores a trained learner on the cell's fixed evaluation episodes.
pub fn evaluate_learner(
    learner: &(dyn EpisodicLearner + Sync),
    cell: &Cell<'_>,
    scale: &Scale,
) -> Result<MeanCi> {
    let scores = evaluate_learner_scores(learner, cell, scale)?;
    Ok(fewner_util::ci95(&scores))
}

/// Like [`evaluate_learner`] but returns the raw per-episode F1 scores —
/// the input to paired significance testing (episodes are seed-fixed, so
/// scores of different methods align by index).
pub fn evaluate_learner_scores(
    learner: &(dyn EpisodicLearner + Sync),
    cell: &Cell<'_>,
    scale: &Scale,
) -> Result<Vec<f64>> {
    let sampler = EpisodeSampler::new(cell.test, cell.n_ways, cell.k_shots, scale.query_size)?;
    let tasks = sampler.eval_set(EVAL_SEED, scale.episodes)?;
    tasks
        .iter()
        .map(|task| fewner_eval::score_task(learner, task, cell.enc))
        .collect()
}

/// [`run_cell`] variant returning per-episode scores; failures degrade to
/// an empty score list.
pub fn run_cell_scores(method: Method, cell: &Cell<'_>, scale: &Scale) -> Vec<f64> {
    let meta = meta_config();
    let run = || -> Result<Vec<f64>> {
        let mut learner = build_method(method, cell.enc, cell.n_ways, &meta)?;
        train_learner(learner.as_mut(), cell, scale, &meta)?;
        evaluate_learner_scores(learner.as_ref(), cell, scale)
    };
    match run() {
        Ok(scores) => scores,
        Err(e) => {
            eprintln!("    [cell skipped: {e}]");
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};

    #[test]
    fn smoke_cell_runs_for_every_method() {
        let d = DatasetProfile::bionlp13cg().generate(0.03).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
        let cell = Cell {
            train: &split.train,
            test: &split.test,
            enc: &enc,
            n_ways: 3,
            k_shots: 1,
        };
        let scale = Scale::smoke();
        for method in Method::all() {
            let f1 = run_cell(method, &cell, &scale).unwrap();
            assert!((0.0..=1.0).contains(&f1.mean), "{}: {f1}", method.name());
            assert_eq!(f1.n, scale.episodes);
        }
    }

    #[test]
    fn per_episode_scores_align_with_summary() {
        let d = DatasetProfile::bionlp13cg().generate(0.03).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
        let cell = Cell {
            train: &split.train,
            test: &split.test,
            enc: &enc,
            n_ways: 3,
            k_shots: 1,
        };
        let scale = Scale::smoke();
        let scores = run_cell_scores(Method::ProtoNet, &cell, &scale);
        assert_eq!(scores.len(), scale.episodes);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        let summary = fewner_util::ci95(&scores);
        assert_eq!(summary.n, scale.episodes);
    }

    #[test]
    fn full_net_methods_get_the_paper_inner_lr() {
        // The harness overrides inner_lr for full-network adapters; this is
        // observable through the method's behaviour only, so pin the config
        // plumbing instead: the base meta config keeps the calibrated value.
        let meta = meta_config();
        assert_eq!(meta.inner_lr, 0.25);
        assert_eq!(meta.inner_steps_train, 3);
        assert_eq!(meta.inner_steps_test, 10);
    }

    #[test]
    fn scale_parsing() {
        let args: Vec<String> = ["--scale", "paper", "--episodes", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = Scale::from_args(&args);
        assert_eq!(s.corpus, 1.0);
        assert_eq!(s.episodes, 7);
        let none = Scale::from_args(&[]);
        assert_eq!(none.episodes, Scale::small().episodes);
    }

    #[test]
    fn method_listing_matches_paper_tables() {
        let all = Method::all();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].name(), "GPT2");
        assert_eq!(all[9].name(), "FewNER");
        assert_eq!(Method::static_group().len(), 5);
    }
}
