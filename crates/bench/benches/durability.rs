//! Criterion micro-benchmarks for the crash-safety machinery: CRC-32
//! framing, verified reads, and the atomic write path behind rolling
//! training snapshots. Checkpoint cost is training overhead — a snapshot
//! every n iterations must stay a rounding error next to the meta-step —
//! so these keep the durable layer honest.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fewner_util::{crc32, durable, Rng};

/// A payload about the size of a small model checkpoint (~256 KiB).
fn payload() -> Vec<u8> {
    let mut rng = Rng::new(7);
    (0..256 * 1024).map(|_| rng.next_u64() as u8).collect()
}

fn bench_crc32(c: &mut Criterion) {
    let bytes = payload();
    c.bench_function("crc32_256k", |bench| {
        bench.iter(|| black_box(crc32(&bytes)));
    });
}

fn bench_frame_and_verify(c: &mut Criterion) {
    let bytes = payload();
    let framed = durable::frame(&bytes);
    c.bench_function("durable_frame_256k", |bench| {
        bench.iter(|| black_box(durable::frame(&bytes)));
    });
    let dir = std::env::temp_dir().join(format!("fewner-bench-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("frame.bin");
    std::fs::write(&path, &framed).unwrap();
    c.bench_function("durable_read_verified_256k", |bench| {
        bench.iter(|| black_box(durable::read_verified(&path).unwrap()));
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_atomic_write(c: &mut Criterion) {
    let bytes = payload();
    let dir = std::env::temp_dir().join(format!("fewner-bench-write-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.bin");
    // Includes the fsync — this is the real per-snapshot cost a training
    // run pays, not just the buffered write.
    c.bench_function("durable_write_atomic_256k", |bench| {
        bench.iter(|| durable::write_atomic(black_box(&path), black_box(&bytes)).unwrap());
    });
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    durability,
    bench_crc32,
    bench_frame_and_verify,
    bench_atomic_write
);
criterion_main!(durability);
