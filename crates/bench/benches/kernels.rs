//! Criterion micro-benchmarks for the computational kernels behind the
//! paper's timing analysis (§4.5.2): forward/backward of the backbone's
//! layers, the CRF recursions, Viterbi decoding and one FEWNER inner-loop
//! step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::EpisodeSampler;
use fewner_models::{encode_task, viterbi, viterbi_with, TokenEncoder};
use fewner_tensor::nn::BiGru;
use fewner_tensor::{Array, Graph, KernelBackend, ParamStore};
use fewner_text::TagSet;
use fewner_util::Rng;

const BACKENDS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Blocked];

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let a = Array::uniform(64, 64, -1.0, 1.0, &mut rng);
    let b = Array::uniform(64, 64, -1.0, 1.0, &mut rng);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).unwrap()));
    });
    // Scalar-vs-blocked head-to-head on the dispatcher itself; the 128×128
    // shape is past the L1-friendly sizes where the two converge, so this
    // is where the ≥2× blocked-kernel target is held.
    for (m, k, n) in [(64, 64, 64), (128, 128, 128), (14, 96, 48)] {
        let a = Array::uniform(m, k, -1.0, 1.0, &mut rng);
        let b = Array::uniform(k, n, -1.0, 1.0, &mut rng);
        for backend in BACKENDS {
            let mut out = Array::zeros(m, n);
            c.bench_function(&format!("matmul_{m}x{k}x{n}/{}", backend.name()), |bench| {
                bench.iter(|| {
                    backend.matmul_into(&a, &b, &mut out, false);
                    black_box(out.at(0, 0))
                });
            });
        }
    }
}

fn bench_pointwise_kernels(c: &mut Criterion) {
    let mut rng = Rng::new(6);
    let scores = Array::uniform(128, 32, -4.0, 4.0, &mut rng);
    for backend in BACKENDS {
        c.bench_function(
            &format!("logsumexp_cols_128x32/{}", backend.name()),
            |bench| {
                bench.iter(|| black_box(backend.logsumexp_cols(&scores)));
            },
        );
        c.bench_function(
            &format!("log_softmax_rows_128x32/{}", backend.name()),
            |bench| {
                bench.iter(|| black_box(backend.log_softmax_rows(&scores)));
            },
        );
    }
}

fn bench_bigru(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut store = ParamStore::new();
    let gru = BiGru::new(&mut store, "g", 48, 24, &mut rng);
    let x = Array::uniform(14, 48, -1.0, 1.0, &mut rng);
    c.bench_function("bigru_forward_L14", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.constant(x.clone());
            black_box(g.value(gru.apply(&g, &store, xv)));
        });
    });
    c.bench_function("bigru_forward_backward_L14", |bench| {
        bench.iter(|| {
            let g = Graph::new();
            let xv = g.constant(x.clone());
            let h = gru.apply(&g, &store, xv);
            let loss = g.mean_all(g.mul(h, h));
            black_box(g.backward(loss).unwrap().for_store(&store));
        });
    });
}

fn bench_crf(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let tags = TagSet::new(5).unwrap();
    let t = tags.len();
    let emissions = Array::uniform(14, t, -1.0, 1.0, &mut rng);
    let trans = Array::uniform(t, t, -1.0, 1.0, &mut rng);
    let start = Array::uniform(1, t, -1.0, 1.0, &mut rng);
    let gold: Vec<usize> = vec![0, 1, 2, 0, 3, 4, 0, 5, 6, 0, 7, 8, 0, 0];

    c.bench_function("crf_nll_forward_backward_L14_T11", |bench| {
        bench.iter(|| {
            let mut store = ParamStore::new();
            let e_id = store.add("e", emissions.clone());
            let g = Graph::new();
            let e = g.param(&store, e_id);
            let tr = g.constant(trans.clone());
            let s = g.constant(start.clone());
            let nll = fewner_models::crf_nll(&g, e, tr, s, &gold);
            black_box(g.backward(nll).unwrap());
        });
    });
    c.bench_function("viterbi_L14_T11", |bench| {
        bench.iter(|| black_box(viterbi(&emissions, &trans, &start, &tags)));
    });
    for backend in BACKENDS {
        c.bench_function(
            &format!("crf_forward_lattice_L14_T11/{}", backend.name()),
            |bench| {
                bench.iter(|| black_box(backend.crf_forward_lattice(&emissions, &trans, &start)));
            },
        );
        c.bench_function(&format!("viterbi_L14_T11/{}", backend.name()), |bench| {
            bench.iter(|| black_box(viterbi_with(backend, &emissions, &trans, &start, &tags)));
        });
    }
}

fn bench_inner_loop(c: &mut Criterion) {
    // One FEWNER inner-loop φ step on a real 5-way 1-shot support set —
    // the paper reports 0.04 s per inner loop on a V100 (§4.5.2).
    let d = DatasetProfile::genia().generate(0.01).unwrap();
    let split = split_types(&d, (18, 8, 10), 42).unwrap();
    let enc = TokenEncoder::build(&[&d], &fewner_bench::embedding_spec(), 4);
    let sampler = EpisodeSampler::new(&split.train, 5, 1, 4).unwrap();
    let task = sampler.sample(&mut Rng::new(5)).unwrap();
    let learner = fewner_core::Fewner::new(
        fewner_bench::backbone_config(5, fewner_models::Conditioning::Film),
        &enc,
        fewner_bench::meta_config(),
    )
    .unwrap();
    let (support, _) = encode_task(&enc, &task);
    let tags = task.tag_set();
    c.bench_function("fewner_inner_step_5way_1shot", |bench| {
        bench.iter(|| {
            black_box(learner.adapt_context(&support, &tags, 1).unwrap());
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_pointwise_kernels, bench_bigru, bench_crf, bench_inner_loop
}
criterion_main!(kernels);
