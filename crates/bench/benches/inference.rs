//! Criterion comparison of the two executors on the FEWNER backbone:
//! tape-recording forward ([`Graph::eval`]) vs the gradient-free [`Infer`]
//! executor with its recycled scratch arena.
//!
//! Three views, coarse to fine:
//!
//! * `forward_per_sentence` — one backbone forward (`Backbone::hidden`,
//!   char-CNN + BiGRU + FiLM) for a single query sentence; the same math
//!   runs on both executors, so the gap is pure executor overhead.
//! * `forward_per_task` — the same forward swept over a task's full query
//!   set; the tape builds a fresh graph per sentence (the pre-executor
//!   inference pattern) while `Infer` reuses one arena via mark/reset.
//! * `decode_per_task` — the end-to-end serving cost: the tape side runs
//!   `batch_loss`'s full forward (emissions + CRF partition) and the infer
//!   side runs `decode_task` (emissions + Viterbi, φ-conditioned context
//!   hoisted once per task). Same asymptotics on the lattice, so the gap
//!   is tape bookkeeping plus repeated context work.
//!
//! After the criterion samples, a tokens/sec summary (the unit used by
//! `fewner predict` and the timing binary) is printed for the per-task
//! sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::EpisodeSampler;
use fewner_eval::Throughput;
use fewner_models::{encode_task, Conditioning, LabeledSentence, TokenEncoder};
use fewner_tensor::{Exec, Graph, Infer, KernelBackend, ParamId, ParamStore, WeightFormat};
use fewner_text::TagSet;
use fewner_util::Rng;

struct Fixture {
    learner: fewner_core::Fewner,
    phi_store: ParamStore,
    phi_id: ParamId,
    query: Vec<LabeledSentence>,
    tags: TagSet,
}

/// A trained-shape FEWNER learner adapted to one 5-way 1-shot GENIA task.
fn fixture() -> Fixture {
    let d = DatasetProfile::genia().generate(0.01).unwrap();
    let split = split_types(&d, (18, 8, 10), 42).unwrap();
    let enc = TokenEncoder::build(&[&d], &fewner_bench::embedding_spec(), 4);
    let sampler = EpisodeSampler::new(&split.train, 5, 1, 6).unwrap();
    let task = sampler.sample(&mut Rng::new(5)).unwrap();
    let learner = fewner_core::Fewner::new(
        fewner_bench::backbone_config(5, Conditioning::Film),
        &enc,
        fewner_bench::meta_config(),
    )
    .unwrap();
    let (support, query) = encode_task(&enc, &task);
    let tags = task.tag_set();
    let (phi_store, phi_id, _) = learner.adapt_context(&support, &tags, 3).unwrap();
    Fixture {
        learner,
        phi_store,
        phi_id,
        query,
        tags,
    }
}

fn bench_forward_per_sentence(c: &mut Criterion) {
    let f = fixture();
    let sent = &f.query[0].0;
    let mut group = c.benchmark_group("forward_per_sentence");
    group.bench_function("tape", |b| {
        b.iter(|| {
            let g = Graph::eval();
            let phi = g.param(&f.phi_store, f.phi_id);
            let mut rng = Rng::new(0);
            let h = f
                .learner
                .backbone
                .hidden(&g, &f.learner.theta, Some(phi), sent, &mut rng);
            black_box(g.value(h))
        });
    });
    group.bench_function("infer", |b| {
        let ex = Infer::new();
        let mark = ex.mark();
        b.iter(|| {
            let phi = ex.param(&f.phi_store, f.phi_id);
            let mut rng = Rng::new(0);
            let h = f
                .learner
                .backbone
                .hidden(&ex, &f.learner.theta, Some(phi), sent, &mut rng);
            let out = black_box(ex.value(h));
            ex.reset_to(mark);
            out
        });
    });
    group.finish();
}

fn bench_forward_per_task(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("forward_per_task");
    group.bench_function("tape", |b| {
        b.iter(|| {
            // Pre-executor inference pattern: one fresh tape per sentence.
            for (sent, _) in &f.query {
                let g = Graph::eval();
                let phi = g.param(&f.phi_store, f.phi_id);
                let mut rng = Rng::new(0);
                let h = f
                    .learner
                    .backbone
                    .hidden(&g, &f.learner.theta, Some(phi), sent, &mut rng);
                black_box(g.value(h));
            }
        });
    });
    group.bench_function("infer", |b| {
        let ex = Infer::new();
        let mark = ex.mark();
        b.iter(|| {
            // Serving pattern: one arena, recycled between sentences.
            for (sent, _) in &f.query {
                let phi = ex.param(&f.phi_store, f.phi_id);
                let mut rng = Rng::new(0);
                let h = f
                    .learner
                    .backbone
                    .hidden(&ex, &f.learner.theta, Some(phi), sent, &mut rng);
                black_box(ex.value(h));
                ex.reset_to(mark);
            }
        });
    });
    group.finish();
}

fn bench_decode_per_task(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("decode_per_task");
    group.bench_function("tape_batch_loss_forward", |b| {
        b.iter(|| {
            let g = Graph::eval();
            let phi = g.param(&f.phi_store, f.phi_id);
            let mut rng = Rng::new(0);
            let loss = f.learner.backbone.batch_loss(
                &g,
                &f.learner.theta,
                Some(phi),
                &f.query,
                &f.tags,
                &mut rng,
            );
            black_box(g.value(loss).scalar_value())
        });
    });
    group.bench_function("infer_decode_task", |b| {
        b.iter(|| {
            black_box(f.learner.backbone.decode_task(
                &f.learner.theta,
                Some((&f.phi_store, f.phi_id)),
                f.query.iter().map(|(s, _)| s),
                &f.tags,
            ))
        });
    });
    // Pin each kernel backend explicitly (decode_task follows FEWNER_KERNELS)
    // so the scalar-vs-blocked serving gap shows up in one report.
    for backend in [KernelBackend::Scalar, KernelBackend::Blocked] {
        group.bench_function(&format!("infer_decode_task/{}", backend.name()), |b| {
            b.iter(|| {
                black_box(f.learner.backbone.decode_task_with(
                    backend,
                    &f.learner.theta,
                    Some((&f.phi_store, f.phi_id)),
                    f.query.iter().map(|(s, _)| s),
                    &f.tags,
                ))
            });
        });
    }
    // Quantized serving (`--weights i8`): same decode over a dequantized-i8
    // copy of θ — the F1 contract lives in tests/quantized_serving.rs, this
    // pins that the quantized path costs the same as f32 (it is plain f32
    // math after dequantization, not a slower integer path).
    let mut theta_i8 = f.learner.theta.clone();
    theta_i8.quantize_all(WeightFormat::I8);
    group.bench_function("infer_decode_task/i8_theta", |b| {
        b.iter(|| {
            black_box(f.learner.backbone.decode_task(
                &theta_i8,
                Some((&f.phi_store, f.phi_id)),
                f.query.iter().map(|(s, _)| s),
                &f.tags,
            ))
        });
    });
    group.finish();
}

/// Tokens/sec for the per-task sweeps, in `fewner predict`'s unit.
fn report_tokens_per_sec(_c: &mut Criterion) {
    let f = fixture();
    const REPS: usize = 30;

    let mut infer_t = Throughput::default();
    for _ in 0..REPS {
        let (paths, t) = fewner_eval::measure_predictions(|| {
            Ok(f.learner.backbone.decode_task(
                &f.learner.theta,
                Some((&f.phi_store, f.phi_id)),
                f.query.iter().map(|(s, _)| s),
                &f.tags,
            ))
        })
        .unwrap();
        black_box(paths);
        infer_t.merge(&t);
    }

    // Per-backend split of the same sweep: the blocked kernels are the
    // serving default, the scalar numbers are the tape-parity baseline.
    let mut backend_t = Vec::new();
    for backend in [KernelBackend::Scalar, KernelBackend::Blocked] {
        let mut total = Throughput::default();
        for _ in 0..REPS {
            let (paths, t) = fewner_eval::measure_predictions(|| {
                Ok(f.learner.backbone.decode_task_with(
                    backend,
                    &f.learner.theta,
                    Some((&f.phi_store, f.phi_id)),
                    f.query.iter().map(|(s, _)| s),
                    &f.tags,
                ))
            })
            .unwrap();
            black_box(paths);
            total.merge(&t);
        }
        backend_t.push((backend.name(), total));
    }

    let mut tape_t = Throughput::default();
    for _ in 0..REPS {
        let (hs, t) = fewner_eval::measure_predictions(|| {
            Ok(f.query
                .iter()
                .map(|(sent, _)| {
                    let g = Graph::eval();
                    let phi = g.param(&f.phi_store, f.phi_id);
                    let mut rng = Rng::new(0);
                    let h =
                        f.learner
                            .backbone
                            .hidden(&g, &f.learner.theta, Some(phi), sent, &mut rng);
                    vec![0; g.value(h).rows()]
                })
                .collect())
        })
        .unwrap();
        black_box(hs);
        tape_t.merge(&t);
    }

    println!(
        "tokens_per_sec/infer_decode_task        {}",
        infer_t.render()
    );
    for (name, t) in &backend_t {
        println!("tokens_per_sec/infer_decode_task.{name:<7} {}", t.render());
    }
    println!(
        "tokens_per_sec/tape_hidden_sweep        {}",
        tape_t.render()
    );
}

criterion_group! {
    name = inference;
    config = Criterion::default().sample_size(40);
    targets = bench_forward_per_sentence, bench_forward_per_task,
              bench_decode_per_task, report_tokens_per_sec
}
criterion_main!(inference);
