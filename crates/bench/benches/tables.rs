//! Criterion smoke benchmarks: one per paper table, exercising the exact
//! pipeline the corresponding `table*` binary runs at full scale. These
//! exist so `cargo bench --workspace` touches every experiment's code path
//! and tracks its cost over time; the real numbers come from the binaries
//! (see `fewner-bench`'s crate docs and EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fewner_bench::{embedding_spec, run_cell, Cell, Method, Scale};
use fewner_corpus::{
    full_view, holdout_target, split_sentences, split_types, AceDomain, DatasetProfile,
};
use fewner_models::TokenEncoder;

fn table1_smoke(c: &mut Criterion) {
    c.bench_function("table1_corpus_stats", |b| {
        b.iter(|| {
            let d = DatasetProfile::genia().generate(0.01).unwrap();
            black_box(d.stats());
        });
    });
}

fn table2_smoke(c: &mut Criterion) {
    let d = DatasetProfile::genia().generate(0.01).unwrap();
    let split = split_types(&d, (18, 8, 10), 42).unwrap();
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
    let scale = Scale::smoke();
    c.bench_function("table2_intra_domain_cell_fewner", |b| {
        b.iter(|| {
            let cell = Cell {
                train: &split.train,
                test: &split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: 1,
            };
            black_box(run_cell(Method::FewNer, &cell, &scale).unwrap());
        });
    });
}

fn table3_smoke(c: &mut Criterion) {
    let src = DatasetProfile::ace2005(AceDomain::Bn)
        .generate(0.06)
        .unwrap();
    let dst = DatasetProfile::ace2005(AceDomain::Cts)
        .generate(0.06)
        .unwrap();
    let src_split = split_sentences(&src, (8.0, 1.0, 1.0), 7).unwrap();
    let dst_split = split_sentences(&dst, (8.0, 1.0, 1.0), 7).unwrap();
    let enc = TokenEncoder::build(&[&src, &dst], &embedding_spec(), 4);
    let scale = Scale::smoke();
    c.bench_function("table3_cross_domain_cell_fewner", |b| {
        b.iter(|| {
            let cell = Cell {
                train: &src_split.train,
                test: &dst_split.test,
                enc: &enc,
                n_ways: 5,
                k_shots: 1,
            };
            black_box(run_cell(Method::FewNer, &cell, &scale).unwrap());
        });
    });
}

fn table4_smoke(c: &mut Criterion) {
    let src = DatasetProfile::genia().generate(0.01).unwrap();
    let dst = DatasetProfile::bionlp13cg().generate(0.04).unwrap();
    let train = full_view(&src);
    let (_v, test) = holdout_target(&dst, 11).unwrap();
    let enc = TokenEncoder::build(&[&src, &dst], &embedding_spec(), 4);
    let scale = Scale::smoke();
    c.bench_function("table4_cross_type_cell_fewner", |b| {
        b.iter(|| {
            let cell = Cell {
                train: &train,
                test: &test,
                enc: &enc,
                n_ways: 5,
                k_shots: 1,
            };
            black_box(run_cell(Method::FewNer, &cell, &scale).unwrap());
        });
    });
}

fn table5_smoke(c: &mut Criterion) {
    // The ablation that matters most in the paper: with vs without the
    // character CNN.
    let d = DatasetProfile::nne().generate(0.004).unwrap();
    let split = split_types(&d, (52, 10, 15), 42).unwrap();
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
    let scale = Scale::smoke();
    let mut group = c.benchmark_group("table5_ablation");
    for (name, use_cnn) in [("with_char_cnn", true), ("without_char_cnn", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut bb = fewner_bench::backbone_config(5, fewner_models::Conditioning::Film);
                bb.use_char_cnn = use_cnn;
                let meta = fewner_bench::meta_config();
                let mut learner = fewner_core::Fewner::new(bb, &enc, meta.clone()).unwrap();
                let cell = Cell {
                    train: &split.train,
                    test: &split.test,
                    enc: &enc,
                    n_ways: 5,
                    k_shots: 1,
                };
                fewner_bench::train_learner(&mut learner, &cell, &scale, &meta).unwrap();
                black_box(fewner_bench::evaluate_learner(&learner, &cell, &scale).unwrap());
            });
        });
    }
    group.finish();
}

fn table6_smoke(c: &mut Criterion) {
    // Qualitative path: adapt + render bracketed predictions.
    let d = DatasetProfile::genia().generate(0.01).unwrap();
    let split = split_types(&d, (18, 8, 10), 42).unwrap();
    let enc = TokenEncoder::build(&[&d], &embedding_spec(), 4);
    let meta = fewner_bench::meta_config();
    let learner = fewner_core::Fewner::new(
        fewner_bench::backbone_config(5, fewner_models::Conditioning::Film),
        &enc,
        meta,
    )
    .unwrap();
    let sampler = fewner_episode::EpisodeSampler::new(&split.test, 5, 1, 4).unwrap();
    let task = sampler
        .eval_set(fewner_bench::EVAL_SEED, 1)
        .unwrap()
        .remove(0);
    c.bench_function("table6_qualitative_adapt_and_render", |b| {
        b.iter(|| {
            use fewner_core::EpisodicLearner as _;
            let preds = learner.adapt_and_predict(&task, &enc).unwrap();
            let tags = task.tag_set();
            let mut lines = Vec::new();
            for (pred_idx, sent) in preds.iter().zip(&task.query) {
                let pred: Vec<fewner_text::Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
                lines.push(fewner_eval::qualitative_line(
                    &sent.tokens,
                    &sent.tags,
                    &pred,
                    |s| format!("slot{s}"),
                ));
            }
            black_box(lines);
        });
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = table1_smoke, table2_smoke, table3_smoke, table4_smoke, table5_smoke, table6_smoke
}
criterion_main!(tables);
