//! Differential CRF lattice tests: the log-space forward (α) and backward
//! (β) recursions are checked against **brute-force enumeration over every
//! label path**, computed in `f64` — on small tasks (≤ 4 labels, ≤ 6
//! tokens) where exhaustive enumeration is exact, and on both kernel
//! backends.
//!
//! What is pinned:
//! * `α[t][j]` = log Σ over all prefixes ending in label `j` at step `t`.
//! * `β[t][i]` = log Σ over all suffixes leaving label `i` at step `t`.
//! * `lse_j(α[t][j] + β[t][j]) = log Z` at *every* step — the marginals'
//!   normaliser does not drift along the sequence.
//! * Scalar and Blocked backends agree bitwise on both lattices.

use fewner_tensor::{Array, KernelBackend};
use fewner_util::Rng;

const BACKENDS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Blocked];

struct Case {
    emissions: Array,
    trans: Array,
    start: Array,
}

fn random_case(len: usize, labels: usize, seed: u64) -> Case {
    let mut rng = Rng::new(seed);
    Case {
        emissions: Array::uniform(len, labels, -2.0, 2.0, &mut rng),
        trans: Array::uniform(labels, labels, -2.0, 2.0, &mut rng),
        start: Array::uniform(1, labels, -2.0, 2.0, &mut rng),
    }
}

/// Enumerates every label path of length `t + 1` that ends in label `j`,
/// returning `log Σ exp(prefix score)` in f64.
fn brute_alpha(case: &Case, t: usize, j: usize) -> f64 {
    let l = case.trans.rows();
    let mut total = 0.0f64;
    let paths = l.pow(t as u32);
    for code in 0..paths {
        // Decode the first t labels; position t is fixed to j.
        let mut labels = Vec::with_capacity(t + 1);
        let mut c = code;
        for _ in 0..t {
            labels.push(c % l);
            c /= l;
        }
        labels.push(j);
        let mut score = case.start.at(0, labels[0]) as f64;
        for (step, &y) in labels.iter().enumerate() {
            score += case.emissions.at(step, y) as f64;
            if step > 0 {
                score += case.trans.at(labels[step - 1], y) as f64;
            }
        }
        total += score.exp();
    }
    total.ln()
}

/// Enumerates every label suffix starting *after* label `i` at step `t`,
/// returning `log Σ exp(suffix score)` in f64. Suffix scores cover
/// emissions and transitions strictly after `t` (the β convention: the
/// current step's emission belongs to α).
fn brute_beta(case: &Case, t: usize, i: usize) -> f64 {
    let len = case.emissions.rows();
    let l = case.trans.rows();
    let steps = len - 1 - t;
    if steps == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for code in 0..l.pow(steps as u32) {
        let mut labels = vec![i];
        let mut c = code;
        for _ in 0..steps {
            labels.push(c % l);
            c /= l;
        }
        let mut score = 0.0f64;
        for s in 1..labels.len() {
            score += case.trans.at(labels[s - 1], labels[s]) as f64
                + case.emissions.at(t + s, labels[s]) as f64;
        }
        total += score.exp();
    }
    total.ln()
}

fn logsumexp_f64(vals: impl Iterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = vals.collect();
    let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max + vals.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

const TOL: f64 = 2e-4;

#[test]
fn forward_lattice_matches_brute_force_enumeration() {
    let mut seed = 0;
    for len in 1..=6usize {
        for labels in 1..=4usize {
            seed += 1;
            let case = random_case(len, labels, seed);
            for backend in BACKENDS {
                let alpha = backend.crf_forward_lattice(&case.emissions, &case.trans, &case.start);
                assert_eq!(alpha.shape(), (len, labels));
                for t in 0..len {
                    for j in 0..labels {
                        let want = brute_alpha(&case, t, j);
                        let got = alpha.at(t, j) as f64;
                        assert!(
                            (got - want).abs() < TOL,
                            "{} α[{t}][{j}] (len {len}, {labels} labels): {got} vs {want}",
                            backend.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn backward_lattice_matches_brute_force_enumeration() {
    let mut seed = 100;
    for len in 1..=6usize {
        for labels in 1..=4usize {
            seed += 1;
            let case = random_case(len, labels, seed);
            for backend in BACKENDS {
                let beta = backend.crf_backward_lattice(&case.emissions, &case.trans);
                assert_eq!(beta.shape(), (len, labels));
                for t in 0..len {
                    for i in 0..labels {
                        let want = brute_beta(&case, t, i);
                        let got = beta.at(t, i) as f64;
                        assert!(
                            (got - want).abs() < TOL,
                            "{} β[{t}][{i}] (len {len}, {labels} labels): {got} vs {want}",
                            backend.name()
                        );
                    }
                }
            }
        }
    }
}

/// The partition function computed three ways — from α's last step, from β
/// joined with the first step, and by direct path enumeration — agrees, and
/// `lse(α_t + β_t)` is constant in `t`.
#[test]
fn alpha_beta_consistency_pins_log_z_at_every_step() {
    let mut seed = 200;
    for len in 1..=6usize {
        for labels in 1..=4usize {
            seed += 1;
            let case = random_case(len, labels, seed);
            let brute_log_z = logsumexp_f64((0..labels).map(|j| brute_alpha(&case, len - 1, j)));
            for backend in BACKENDS {
                let alpha = backend.crf_forward_lattice(&case.emissions, &case.trans, &case.start);
                let beta = backend.crf_backward_lattice(&case.emissions, &case.trans);
                for t in 0..len {
                    let log_z = logsumexp_f64(
                        (0..labels).map(|j| alpha.at(t, j) as f64 + beta.at(t, j) as f64),
                    );
                    assert!(
                        (log_z - brute_log_z).abs() < TOL,
                        "{} log Z via step {t} (len {len}, {labels} labels): \
                         {log_z} vs brute {brute_log_z}",
                        backend.name()
                    );
                }
            }
        }
    }
}

/// Forbidden-strength potentials (the models crate adds −1e4 to banned
/// transitions) must not destabilise the lattices: no NaN/inf appears and
/// backends still agree bitwise.
#[test]
fn lattices_survive_forbidden_scale_potentials_on_both_backends() {
    let mut rng = Rng::new(7);
    let len = 5;
    let labels = 4;
    let mut case = random_case(len, labels, 42);
    // Ban a transition and a start the way the CRF heads do.
    *case.trans.at_mut(0, 1) += -1.0e4;
    *case.trans.at_mut(3, 3) += -1.0e4;
    *case.start.at_mut(0, 2) += -1.0e4;
    let _ = &mut rng;

    let scalar_a =
        KernelBackend::Scalar.crf_forward_lattice(&case.emissions, &case.trans, &case.start);
    let blocked_a =
        KernelBackend::Blocked.crf_forward_lattice(&case.emissions, &case.trans, &case.start);
    let scalar_b = KernelBackend::Scalar.crf_backward_lattice(&case.emissions, &case.trans);
    let blocked_b = KernelBackend::Blocked.crf_backward_lattice(&case.emissions, &case.trans);
    for (s, b, what) in [(&scalar_a, &blocked_a, "α"), (&scalar_b, &blocked_b, "β")] {
        assert!(s.all_finite(), "{what} must stay finite");
        for (i, (x, y)) in s.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what} element {i}: {x} vs {y}");
        }
    }
}
