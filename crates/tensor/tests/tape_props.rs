//! Algebraic properties of the autodiff tape beyond pointwise gradchecks:
//! linearity of the backward map, chain-rule composition, gradient
//! accumulation across shared subexpressions, and optimizer determinism.

use fewner_tensor::{Adam, Array, Graph, ParamGrads, ParamStore, Sgd};
use fewner_util::Rng;
use proptest::prelude::*;

fn rand_array(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    Array::uniform(rows, cols, -1.0, 1.0, &mut rng)
}

/// d/dx [a·f(x) + b·g(x)] must equal a·df/dx + b·dg/dx.
#[test]
fn backward_is_linear_in_the_loss() {
    let x0 = rand_array(3, 3, 1);
    let (a, b) = (0.7f32, -1.3f32);

    let grad_of = |weight_f: f32, weight_g: f32| -> Array {
        let mut store = ParamStore::new();
        let id = store.add("x", x0.clone());
        let g = Graph::new();
        let x = g.param(&store, id);
        let f = g.sum_all(g.tanh(x));
        let gg = g.sum_all(g.mul(x, x));
        let loss = g.add(g.mul_scalar(f, weight_f), g.mul_scalar(gg, weight_g));
        g.backward(loss)
            .unwrap()
            .for_store(&store)
            .get(id)
            .cloned()
            .unwrap()
    };

    let combined = grad_of(a, b);
    let f_only = grad_of(1.0, 0.0);
    let g_only = grad_of(0.0, 1.0);
    for i in 0..combined.len() {
        let expect = a * f_only.data()[i] + b * g_only.data()[i];
        assert!(
            (combined.data()[i] - expect).abs() < 1e-5,
            "linearity violated at {i}"
        );
    }
}

/// Gradient of h(g(f(x))) computed in one graph equals the product of
/// Jacobians computed via an intermediate cut (manual chain rule on a
/// scalar chain).
#[test]
fn chain_rule_composition() {
    // Scalar chain: y = tanh(x), z = y^2, loss = 3z. dloss/dx = 3·2y·(1-y²).
    let mut store = ParamStore::new();
    let id = store.add("x", Array::scalar(0.4));
    let g = Graph::new();
    let x = g.param(&store, id);
    let y = g.tanh(x);
    let z = g.mul(y, y);
    let loss = g.mul_scalar(z, 3.0);
    let grad = g
        .backward(loss)
        .unwrap()
        .for_store(&store)
        .get(id)
        .unwrap()
        .scalar_value();
    let yv = 0.4f32.tanh();
    let expect = 3.0 * 2.0 * yv * (1.0 - yv * yv);
    assert!((grad - expect).abs() < 1e-5, "{grad} vs {expect}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two graphs built from the same inputs produce identical values and
    /// gradients (the tape is deterministic).
    #[test]
    fn tape_is_deterministic(seed in 0u64..1000) {
        let run = || {
            let mut store = ParamStore::new();
            let id = store.add("w", rand_array(2, 4, seed));
            let g = Graph::new();
            let w = g.param(&store, id);
            let h = g.sigmoid(g.matmul(w, g.constant(rand_array(4, 3, seed ^ 9))));
            let loss = g.mean_all(g.mul(h, h));
            let value = g.value(loss).scalar_value();
            let grad = g.backward(loss).unwrap().for_store(&store).get(id).cloned().unwrap();
            (value, grad)
        };
        let (v1, g1) = run();
        let (v2, g2) = run();
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(g1.data(), g2.data());
    }

    /// A parameter used through two paths accumulates exactly the sum of
    /// the single-path gradients.
    #[test]
    fn shared_subexpression_accumulates(seed in 0u64..1000) {
        let x0 = rand_array(2, 2, seed);
        let single = |which: usize| -> Array {
            let mut store = ParamStore::new();
            let id = store.add("x", x0.clone());
            let g = Graph::new();
            let x = g.param(&store, id);
            let loss = if which == 0 {
                g.sum_all(g.sigmoid(x))
            } else {
                g.sum_all(g.mul_scalar(x, 2.0))
            };
            g.backward(loss).unwrap().for_store(&store).get(id).cloned().unwrap()
        };
        let both = {
            let mut store = ParamStore::new();
            let id = store.add("x", x0.clone());
            let g = Graph::new();
            let x = g.param(&store, id);
            let loss = g.add(g.sum_all(g.sigmoid(x)), g.sum_all(g.mul_scalar(x, 2.0)));
            g.backward(loss).unwrap().for_store(&store).get(id).cloned().unwrap()
        };
        let (a, b) = (single(0), single(1));
        for i in 0..both.len() {
            prop_assert!((both.data()[i] - a.data()[i] - b.data()[i]).abs() < 1e-5);
        }
    }

    /// SGD and Adam are deterministic given identical gradient sequences.
    #[test]
    fn optimizers_are_deterministic(seed in 0u64..1000) {
        let run_sgd = || {
            let mut store = ParamStore::new();
            let id = store.add("w", rand_array(2, 3, seed));
            let mut opt = Sgd::new(0.1).with_momentum(0.9).with_clip(1.0);
            for step in 0..5 {
                let mut grads = ParamGrads::zeros_like(&store);
                grads.accumulate(id.index(), &rand_array(2, 3, seed ^ (step + 1)));
                opt.step(&mut store, &grads).unwrap();
            }
            store.value_at(0).data().to_vec()
        };
        prop_assert_eq!(run_sgd(), run_sgd());

        let run_adam = || {
            let mut store = ParamStore::new();
            let id = store.add("w", rand_array(2, 3, seed));
            let mut opt = Adam::new(0.01).with_weight_decay(1e-4);
            for step in 0..5 {
                let mut grads = ParamGrads::zeros_like(&store);
                grads.accumulate(id.index(), &rand_array(2, 3, seed ^ (step + 100)));
                opt.step(&mut store, &grads).unwrap();
            }
            store.value_at(0).data().to_vec()
        };
        prop_assert_eq!(run_adam(), run_adam());
    }

    /// Gradient clipping preserves direction and caps magnitude.
    #[test]
    fn clip_preserves_direction(seed in 0u64..1000, clip in 0.5f32..5.0) {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::zeros(3, 3));
        let raw = rand_array(3, 3, seed);
        let mut grads = ParamGrads::zeros_like(&store);
        grads.accumulate(id.index(), &raw);
        let before = grads.global_norm();
        grads.clip_global_norm(clip);
        let after = grads.global_norm();
        prop_assert!(after <= clip * 1.0001);
        if before > 1e-6 {
            // Direction preserved: clipped = raw * (after / before).
            let g = grads.get(id).unwrap();
            let ratio = after / before;
            for (c, r) in g.data().iter().zip(raw.data()) {
                prop_assert!((c - r * ratio).abs() < 1e-4);
            }
        }
    }

    /// Softmax rows of any finite matrix are a probability distribution and
    /// its graph value agrees with exp(log_softmax).
    #[test]
    fn softmax_consistency(seed in 0u64..1000, rows in 1usize..5, cols in 2usize..6) {
        let x = rand_array(rows, cols, seed);
        let g = Graph::new();
        let xv = g.constant(x);
        let sm = g.value(g.softmax_rows(xv));
        let lsm = g.value(g.log_softmax_rows(xv));
        for r in 0..rows {
            let sum: f32 = sm.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for c in 0..cols {
                prop_assert!((sm.at(r, c) - lsm.at(r, c).exp()).abs() < 1e-5);
            }
        }
    }
}
