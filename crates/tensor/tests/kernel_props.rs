//! Kernel-equivalence and algebraic property suite.
//!
//! Two layers of guarantees are pinned here:
//!
//! 1. **Algebraic laws** of the scalar oracle kernels themselves —
//!    broadcast-shape laws, log-sum-exp against a naive shifted-sum oracle
//!    (computed in `f64`), the unfold/unfold-backward adjoint, and
//!    `reduce_into` against transposed brute force.
//! 2. **Backend equivalence** — every kernel dispatched by
//!    [`KernelBackend`] must produce *bitwise identical* results on
//!    `Scalar` and `Blocked`, except `matmul_a_bt`, whose 8-lane tree
//!    reduction is held to an explicit ULP budget instead (it only runs on
//!    the tape's backward path, which is pinned to `Scalar`).
//!
//! The tolerance taxonomy (bitwise / ULP-bounded / F1-bounded) is
//! documented in DESIGN.md §5h.

use fewner_tensor::kernels;
use fewner_tensor::{Array, KernelBackend};
use fewner_util::Rng;
use proptest::prelude::*;

const BACKENDS: [KernelBackend; 2] = [KernelBackend::Scalar, KernelBackend::Blocked];

fn rand_array(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    Array::uniform(rows, cols, -2.0, 2.0, &mut rng)
}

/// Like [`rand_array`] but with exact zeros sprinkled in, to exercise the
/// scalar matmul's zero-skip path (skipping vs adding `0.0` differs on
/// `-0.0` accumulators, so the blocked kernel must skip identically).
fn rand_array_with_zeros(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    let mut a = Array::uniform(rows, cols, -2.0, 2.0, &mut rng);
    for v in a.data_mut() {
        if rng.below(4) == 0 {
            *v = 0.0;
        }
    }
    a
}

fn assert_bitwise(a: &Array, b: &Array, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

// ---------------------------------------------------------------------------
// 1. Algebraic laws of the scalar oracle
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broadcast addition/multiplication are commutative bitwise, for every
    /// broadcast configuration: same-shape, 1-row, 1-col and scalar operands.
    #[test]
    fn broadcast_ops_commute(seed in 0u64..10_000, r in 1usize..7, c in 1usize..7) {
        let full = rand_array(r, c, seed);
        let shapes = [(r, c), (1, c), (r, 1), (1, 1)];
        for (i, &(br, bc)) in shapes.iter().enumerate() {
            let b = rand_array(br, bc, seed ^ (i as u64 + 1));
            let ab = kernels::bcast_zip(&full, &b, "ab", |x, y| x + y);
            let ba = kernels::bcast_zip(&b, &full, "ba", |x, y| x + y);
            assert_bitwise(&ab, &ba, "broadcast add commutes");
            let ab = kernels::bcast_zip(&full, &b, "ab", |x, y| x * y);
            let ba = kernels::bcast_zip(&b, &full, "ba", |x, y| x * y);
            assert_bitwise(&ab, &ba, "broadcast mul commutes");
        }
    }

    /// Broadcasting against a 1-row / 1-col / scalar operand equals zipping
    /// against the explicitly materialised (tiled) operand.
    #[test]
    fn broadcast_equals_materialised_tiling(seed in 0u64..10_000, r in 1usize..7, c in 1usize..7) {
        let a = rand_array(r, c, seed);
        for (i, &(br, bc)) in [(1, c), (r, 1), (1, 1)].iter().enumerate() {
            let b = rand_array(br, bc, seed ^ (i as u64 + 11));
            let mut tiled = Array::zeros(r, c);
            for x in 0..r {
                for y in 0..c {
                    *tiled.at_mut(x, y) = b.at(if br == 1 { 0 } else { x }, if bc == 1 { 0 } else { y });
                }
            }
            let via_bcast = kernels::bcast_zip(&a, &b, "bcast", |x, y| x - y);
            let via_tiled = kernels::bcast_zip(&a, &tiled, "tiled", |x, y| x - y);
            assert_bitwise(&via_bcast, &via_tiled, "tiling law");
        }
    }

    /// `logsumexp_cols` agrees with a naive shifted-sum oracle computed in
    /// f64, within float tolerance — including columns whose max is reached
    /// more than once.
    #[test]
    fn logsumexp_cols_matches_f64_oracle(seed in 0u64..10_000, r in 1usize..9, c in 1usize..7) {
        let mut a = rand_array(r, c, seed);
        if r > 1 {
            // Duplicate the first row into the second: guaranteed ties.
            let first = a.row(0).to_vec();
            a.row_mut(1).copy_from_slice(&first);
        }
        let got = kernels::logsumexp_cols(&a);
        for j in 0..c {
            let max = (0..r).map(|i| a.at(i, j) as f64).fold(f64::NEG_INFINITY, f64::max);
            let sum: f64 = (0..r).map(|i| (a.at(i, j) as f64 - max).exp()).sum();
            let want = max + sum.ln();
            let err = (got.at(0, j) as f64 - want).abs();
            prop_assert!(err < 1e-5, "column {j}: {} vs oracle {want}", got.at(0, j));
        }
    }

    /// One-row input: `lse` over a single element is exactly the element
    /// (`max + ln(exp(0)) = max + 0.0`), bitwise.
    #[test]
    fn logsumexp_cols_single_element_rows_are_exact(seed in 0u64..10_000, c in 1usize..9) {
        let a = rand_array(1, c, seed);
        let got = kernels::logsumexp_cols(&a);
        assert_bitwise(&got, &a, "single-element lse");
    }

    /// The unfold/unfold_backward pair is an adjoint:
    /// `⟨unfold(a), g⟩ = ⟨a, unfold_backward(g)⟩`, and scattering a
    /// ones-gradient back counts each source row's window multiplicity.
    #[test]
    fn unfold_backward_is_the_adjoint_of_unfold(
        seed in 0u64..10_000, r in 1usize..8, c in 1usize..5, k_off in 0usize..8,
    ) {
        let a = rand_array(r, c, seed);
        let k = 1 + k_off % r;
        let u = kernels::unfold(&a, k);
        prop_assert_eq!(u.shape(), (r - k + 1, k * c));

        let g = rand_array(r - k + 1, k * c, seed ^ 21);
        let mut back = Array::zeros(r, c);
        kernels::unfold_backward(&g, k, (r, c), &mut back);
        let dot = |x: &Array, y: &Array| -> f64 {
            x.data().iter().zip(y.data()).map(|(&p, &q)| p as f64 * q as f64).sum()
        };
        let err = (dot(&u, &g) - dot(&a, &back)).abs();
        prop_assert!(err < 1e-4, "adjoint identity violated by {err}");

        // Ones-gradient → per-row window multiplicity.
        let ones = Array::zeros(r - k + 1, k * c).map(|_| 1.0);
        let mut counts = Array::zeros(r, c);
        kernels::unfold_backward(&ones, k, (r, c), &mut counts);
        for i in 0..r {
            let windows = (i.min(r - k) - i.saturating_sub(k - 1) + 1) as f32;
            for j in 0..c {
                assert_eq!(counts.at(i, j), windows, "row {i} multiplicity");
            }
        }
    }

    /// `reduce_into` against brute force: reducing to one row is a column
    /// sum, reducing to one column is a row sum (checked via the transpose),
    /// and reducing to `[1, 1]` is the total — all accumulated on top of
    /// the existing `into` contents.
    #[test]
    fn reduce_into_matches_transposed_brute_force(seed in 0u64..10_000, r in 1usize..7, c in 1usize..7) {
        let g = rand_array(r, c, seed);
        let t = g.transpose();

        // [r, c] → [1, c]: column sums, in ascending-row order.
        let mut into = rand_array(1, c, seed ^ 31);
        let base = into.clone();
        kernels::reduce_into(&g, &mut into);
        for j in 0..c {
            let mut want = base.at(0, j);
            for i in 0..r {
                want += g.at(i, j);
            }
            assert_eq!(into.at(0, j).to_bits(), want.to_bits(), "col sum {j}");
        }

        // [r, c] → [r, 1] equals transposing and reducing to [1, r].
        let mut rows = Array::zeros(r, 1);
        kernels::reduce_into(&g, &mut rows);
        let mut via_t = Array::zeros(1, r);
        kernels::reduce_into(&t, &mut via_t);
        for i in 0..r {
            // Same-order sums: ascending j either way.
            assert_eq!(rows.at(i, 0).to_bits(), via_t.at(0, i).to_bits(), "row sum {i}");
        }

        // [r, c] → [1, 1]: the row-major total.
        let mut scalar = Array::zeros(1, 1);
        kernels::reduce_into(&g, &mut scalar);
        let mut want = 0.0f32;
        for i in 0..r {
            for j in 0..c {
                want += g.at(i, j);
            }
        }
        assert_eq!(scalar.at(0, 0).to_bits(), want.to_bits(), "total");
    }
}

/// All-`-inf` columns must come out as `-inf`, not NaN (`-inf - -inf` would
/// poison a naive implementation), in every kernel that reduces in
/// log-space — on both backends.
#[test]
fn all_neg_inf_inputs_stay_neg_inf() {
    let mut a = Array::zeros(4, 3);
    for v in a.data_mut() {
        *v = f32::NEG_INFINITY;
    }
    // One finite column to prove the guard is per-column.
    *a.at_mut(0, 1) = 1.5;
    for backend in BACKENDS {
        let lse = backend.logsumexp_cols(&a);
        assert_eq!(lse.at(0, 0), f32::NEG_INFINITY, "{}", backend.name());
        assert!(lse.at(0, 1).is_finite(), "{}", backend.name());
        assert_eq!(lse.at(0, 2), f32::NEG_INFINITY, "{}", backend.name());
        assert!(!lse.data().iter().any(|v| v.is_nan()), "{}", backend.name());
    }
    assert_eq!(
        kernels::logsumexp_all(&a.map(|_| f32::NEG_INFINITY)),
        f32::NEG_INFINITY
    );
}

// ---------------------------------------------------------------------------
// 2. Scalar vs Blocked backend equivalence
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul_into` (both fresh and accumulating) and `matmul_at_b` are
    /// bitwise identical across backends over randomized shapes, including
    /// inputs with exact zeros (the zero-skip path).
    #[test]
    fn matmul_kernels_bitwise_equal(
        seed in 0u64..10_000, m in 1usize..12, k in 1usize..20, n in 1usize..12,
    ) {
        let a = rand_array_with_zeros(m, k, seed);
        let b = rand_array_with_zeros(k, n, seed ^ 41);
        for accumulate in [false, true] {
            let mut outs = Vec::new();
            for backend in BACKENDS {
                let mut out = rand_array(m, n, seed ^ 42); // same non-zero base
                backend.matmul_into(&a, &b, &mut out, accumulate);
                outs.push(out);
            }
            assert_bitwise(&outs[0], &outs[1], "matmul_into");
        }

        // aᵀ·b: a is [k, m]-shaped input reduced over its rows.
        let at = rand_array_with_zeros(k, m, seed ^ 43);
        let mut outs = Vec::new();
        for backend in BACKENDS {
            let mut out = Array::zeros(m, n);
            backend.matmul_at_b(&at, &b, &mut out);
            outs.push(out);
        }
        assert_bitwise(&outs[0], &outs[1], "matmul_at_b");
    }

    /// `matmul_a_bt` reassociates (8 partial lanes + tree reduction), so it
    /// carries an explicit error budget instead of bitwise equality. The
    /// budget is in ULPs *of the accumulated magnitude* `Σ|aᵢ·bᵢ|`, not of
    /// the (possibly cancelled-to-tiny) result — reassociation error scales
    /// with what was summed, not with what survived cancellation.
    #[test]
    fn matmul_a_bt_within_ulp_budget(
        seed in 0u64..10_000, m in 1usize..10, k in 1usize..33, n in 1usize..10,
    ) {
        let a = rand_array(m, k, seed);
        let bt = rand_array(n, k, seed ^ 51);
        let mut outs = Vec::new();
        for backend in BACKENDS {
            let mut out = Array::zeros(m, n);
            backend.matmul_a_bt(&a, &bt, &mut out);
            outs.push(out);
        }
        for i in 0..m {
            for j in 0..n {
                let magnitude: f64 = (0..k)
                    .map(|p| (a.at(i, p) as f64 * bt.at(j, p) as f64).abs())
                    .sum();
                // ≤ 2·k rounding steps of ≤ ½ ULP each, ULP measured at the
                // running magnitude; k ≤ 32 keeps this ≪ the budget below.
                let budget = 64.0 * f32::EPSILON as f64 * magnitude.max(f32::MIN_POSITIVE as f64);
                let (x, y) = (outs[0].at(i, j), outs[1].at(i, j));
                let err = (x as f64 - y as f64).abs();
                prop_assert!(err <= budget, "[{i},{j}]: {x} vs {y}, err {err} > budget {budget}");
            }
        }
    }

    /// Elementwise broadcast, reduction, log-space and argmax kernels are
    /// bitwise identical across backends for every broadcast configuration.
    #[test]
    fn pointwise_and_reduction_kernels_bitwise_equal(
        seed in 0u64..10_000, r in 1usize..9, c in 1usize..9,
    ) {
        let a = rand_array(r, c, seed);
        for (i, &(br, bc)) in [(r, c), (1, c), (r, 1), (1, 1)].iter().enumerate() {
            let b = rand_array(br, bc, seed ^ (60 + i as u64));
            let mut outs = Vec::new();
            for backend in BACKENDS {
                let mut out = Array::zeros(r, c);
                backend.bcast_zip_into(&a, &b, &mut out, |x, y| x + y);
                outs.push(out);
            }
            assert_bitwise(&outs[0], &outs[1], "bcast_zip_into");

            // reduce_into in the opposite direction: [r, c] → (br, bc).
            let mut outs = Vec::new();
            for backend in BACKENDS {
                let mut into = rand_array(br, bc, seed ^ 70);
                backend.reduce_into(&a, &mut into);
                outs.push(into);
            }
            assert_bitwise(&outs[0], &outs[1], "reduce_into");
        }

        assert_bitwise(
            &KernelBackend::Scalar.logsumexp_cols(&a),
            &KernelBackend::Blocked.logsumexp_cols(&a),
            "logsumexp_cols",
        );
        assert_bitwise(
            &KernelBackend::Scalar.log_softmax_rows(&a),
            &KernelBackend::Blocked.log_softmax_rows(&a),
            "log_softmax_rows",
        );
        assert_bitwise(
            &KernelBackend::Scalar.softmax_rows(&a),
            &KernelBackend::Blocked.softmax_rows(&a),
            "softmax_rows",
        );
        let (sv, si) = KernelBackend::Scalar.max_cols(&a);
        let (bv, bi) = KernelBackend::Blocked.max_cols(&a);
        assert_bitwise(&sv, &bv, "max_cols values");
        assert_eq!(si, bi, "max_cols argmax");
    }

    /// The CRF lattice kernels are bitwise identical across backends.
    #[test]
    fn crf_lattice_kernels_bitwise_equal(
        seed in 0u64..10_000, t in 1usize..8, l in 1usize..6,
    ) {
        let emissions = rand_array(t, l, seed);
        let trans = rand_array(l, l, seed ^ 81);
        let start = rand_array(1, l, seed ^ 82);
        assert_bitwise(
            &KernelBackend::Scalar.crf_forward_lattice(&emissions, &trans, &start),
            &KernelBackend::Blocked.crf_forward_lattice(&emissions, &trans, &start),
            "crf_forward_lattice",
        );
        assert_bitwise(
            &KernelBackend::Scalar.crf_backward_lattice(&emissions, &trans),
            &KernelBackend::Blocked.crf_backward_lattice(&emissions, &trans),
            "crf_backward_lattice",
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Argmax tie-breaking (Viterbi determinism)
// ---------------------------------------------------------------------------

/// `max_cols` must break ties by the *first* (lowest-index) row, on both
/// backends: Viterbi backpointers go through this argmax, so a tie broken
/// differently would silently change decoded paths between backends.
#[test]
fn max_cols_ties_break_to_the_first_row_on_both_backends() {
    // Column 0: exact tie between rows 0 and 2; column 1: tie between rows
    // 1 and 3; column 2: all-equal; column 3: -0.0 vs +0.0 (compares
    // equal, so the first row must win too).
    let a = Array::from_vec(
        4,
        4,
        vec![
            5.0, 1.0, 7.0, -0.0, //
            2.0, 9.0, 7.0, -1.0, //
            5.0, 3.0, 7.0, 0.0, //
            1.0, 9.0, 7.0, -2.0,
        ],
    );
    for backend in BACKENDS {
        let (vals, args) = backend.max_cols(&a);
        assert_eq!(args, vec![0, 1, 0, 0], "{} argmax", backend.name());
        assert_eq!(
            vals.data(),
            &[5.0, 9.0, 7.0, -0.0],
            "{} values",
            backend.name()
        );
        // The -0.0 winner keeps its sign bit: the *row-0 value* is taken.
        assert_eq!(
            vals.at(0, 3).to_bits(),
            (-0.0f32).to_bits(),
            "{}",
            backend.name()
        );
    }
}

/// Randomized tie pinning: planting duplicates of the column max at random
/// rows never moves the argmax off the first occurrence.
#[test]
fn max_cols_first_max_wins_under_random_duplication() {
    let mut rng = Rng::new(99);
    for _ in 0..50 {
        let r = 2 + rng.below(6);
        let c = 1 + rng.below(5);
        let mut a = Array::uniform(r, c, -2.0, 2.0, &mut rng);
        for j in 0..c {
            // Duplicate the current column max into another random row.
            let (mut max, mut arg) = (f32::NEG_INFINITY, 0);
            for i in 0..r {
                if a.at(i, j) > max {
                    max = a.at(i, j);
                    arg = i;
                }
            }
            let dup = rng.below(r);
            *a.at_mut(dup, j) = max;
            let want = arg.min(dup);
            for backend in BACKENDS {
                let (_, args) = backend.max_cols(&a);
                assert_eq!(args[j], want, "{} column {j}", backend.name());
            }
        }
    }
}
