//! Executor-equivalence properties: every op in the [`Exec`] vocabulary must
//! produce **bitwise identical** values on the tape ([`Graph::eval`]) and on
//! the gradient-free arena ([`Infer`]) — both executors share the same
//! numeric kernels, so even floating-point rounding must agree exactly.
//! Also pins the arena-reuse contract: recycled buffers (mark/reset) never
//! leak stale values into later computations.

use std::sync::Arc;

use fewner_tensor::{Array, Exec, ExecMode, Graph, Infer, ParamStore};
use fewner_util::Rng;
use proptest::prelude::*;

/// A named op-chain case: label + a builder runnable on any executor.
type Case = (&'static str, Box<dyn Fn(&dyn Exec) -> fewner_tensor::Var>);

fn rand_array(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    Array::uniform(rows, cols, -2.0, 2.0, &mut rng)
}

/// Asserts exact bit equality (shape + every f32 payload).
fn assert_bitwise(a: &Array, b: &Array, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Runs the same op-building closure on a tape and on the arena and returns
/// both results.
fn on_both<F>(f: F) -> (Arc<Array>, Arc<Array>)
where
    F: Fn(&dyn Exec) -> fewner_tensor::Var,
{
    let g = Graph::eval();
    let tape = {
        let v = f(&g);
        Exec::value(&g, v)
    };
    let ex = Infer::new();
    let arena = {
        let v = f(&ex);
        Exec::value(&ex, v)
    };
    (tape, arena)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Elementwise ops, scalar ops and the provided compositions
    /// (neg/one_minus/film) agree bitwise.
    #[test]
    fn elementwise_ops_bitwise_equal(seed in 0u64..10_000, r in 1usize..6, c in 1usize..6) {
        let a = rand_array(r, c, seed);
        let b = rand_array(r, c, seed ^ 1);
        let row = rand_array(1, c, seed ^ 2);
        let eta = rand_array(1, c, seed ^ 3);
        let cases: Vec<Case> = vec![
            ("add", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.add(g.constant(a.clone()), g.constant(b.clone()))})),
            ("add_broadcast", Box::new({let (a, row) = (a.clone(), row.clone());
                move |g| g.add(g.constant(a.clone()), g.constant(row.clone()))})),
            ("sub", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.sub(g.constant(a.clone()), g.constant(b.clone()))})),
            ("mul", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.mul(g.constant(a.clone()), g.constant(b.clone()))})),
            ("add_scalar", Box::new({let a = a.clone();
                move |g| g.add_scalar(g.constant(a.clone()), 0.37)})),
            ("mul_scalar", Box::new({let a = a.clone();
                move |g| g.mul_scalar(g.constant(a.clone()), -1.91)})),
            ("sigmoid", Box::new({let a = a.clone();
                move |g| g.sigmoid(g.constant(a.clone()))})),
            ("tanh", Box::new({let a = a.clone();
                move |g| g.tanh(g.constant(a.clone()))})),
            ("relu", Box::new({let a = a.clone();
                move |g| g.relu(g.constant(a.clone()))})),
            ("neg", Box::new({let a = a.clone();
                move |g| g.neg(g.constant(a.clone()))})),
            ("one_minus", Box::new({let a = a.clone();
                move |g| g.one_minus(g.constant(a.clone()))})),
            ("film", Box::new({let (a, row, eta) = (a.clone(), row.clone(), eta.clone());
                move |g| g.film(g.constant(a.clone()), g.constant(row.clone()), g.constant(eta.clone()))})),
        ];
        for (name, build) in &cases {
            let (tape, arena) = on_both(build);
            assert_bitwise(&tape, &arena, name);
        }
    }

    /// Matrix ops and reductions agree bitwise.
    #[test]
    fn reductions_bitwise_equal(seed in 0u64..10_000, r in 1usize..6, c in 1usize..6, k in 1usize..5) {
        let a = rand_array(r, c, seed);
        let b = rand_array(c, k, seed ^ 4);
        let coords: Vec<(usize, usize)> = (0..r).map(|i| (i, i % c)).collect();
        let cases: Vec<Case> = vec![
            ("matmul", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.matmul(g.constant(a.clone()), g.constant(b.clone()))})),
            ("transpose", Box::new({let a = a.clone();
                move |g| g.transpose(g.constant(a.clone()))})),
            ("sum_all", Box::new({let a = a.clone();
                move |g| g.sum_all(g.constant(a.clone()))})),
            ("mean_all", Box::new({let a = a.clone();
                move |g| g.mean_all(g.constant(a.clone()))})),
            ("col_sum", Box::new({let a = a.clone();
                move |g| g.col_sum(g.constant(a.clone()))})),
            ("row_sum", Box::new({let a = a.clone();
                move |g| g.row_sum(g.constant(a.clone()))})),
            ("col_max", Box::new({let a = a.clone();
                move |g| g.col_max(g.constant(a.clone()))})),
            ("col_lse", Box::new({let a = a.clone();
                move |g| g.col_lse(g.constant(a.clone()))})),
            ("lse_all", Box::new({let a = a.clone();
                move |g| g.lse_all(g.constant(a.clone()))})),
            ("log_softmax_rows", Box::new({let a = a.clone();
                move |g| g.log_softmax_rows(g.constant(a.clone()))})),
            ("softmax_rows", Box::new({let a = a.clone();
                move |g| g.softmax_rows(g.constant(a.clone()))})),
            ("row_mean", Box::new({let a = a.clone();
                move |g| g.row_mean(g.constant(a.clone()))})),
            ("gather_sum", Box::new({let (a, coords) = (a.clone(), coords.clone());
                move |g| g.gather_sum(g.constant(a.clone()), &coords)})),
        ];
        for (name, build) in &cases {
            let (tape, arena) = on_both(build);
            assert_bitwise(&tape, &arena, name);
        }
    }

    /// Structural ops (concat / slice / unfold / gather / reshape) agree
    /// bitwise.
    #[test]
    fn structural_ops_bitwise_equal(seed in 0u64..10_000, r in 1usize..6, c in 2usize..6) {
        let a = rand_array(r, c, seed);
        let b = rand_array(r, c, seed ^ 5);
        let idx: Vec<usize> = (0..2 * r).map(|i| i % r).collect();
        let k = r.min(3); // unfold windows over rows: k ≤ r
        let cases: Vec<Case> = vec![
            ("concat_cols", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.concat_cols(&[g.constant(a.clone()), g.constant(b.clone())])})),
            ("concat_rows", Box::new({let (a, b) = (a.clone(), b.clone());
                move |g| g.concat_rows(&[g.constant(a.clone()), g.constant(b.clone())])})),
            ("row", Box::new({let a = a.clone();
                move |g| g.row(g.constant(a.clone()), 0)})),
            ("slice_cols", Box::new({let a = a.clone();
                move |g| g.slice_cols(g.constant(a.clone()), 1, c - 1)})),
            ("unfold", Box::new({let a = a.clone();
                move |g| g.unfold(g.constant(a.clone()), k)})),
            ("gather_rows", Box::new({let (a, idx) = (a.clone(), idx.clone());
                move |g| g.gather_rows(g.constant(a.clone()), &idx)})),
            ("reshape", Box::new({let a = a.clone();
                move |g| g.reshape(g.constant(a.clone()), c, r)})),
        ];
        for (name, build) in &cases {
            let (tape, arena) = on_both(build);
            assert_bitwise(&tape, &arena, name);
        }
    }

    /// A deep composite chain (the shape of a real forward pass) stays
    /// bitwise identical, and re-running it on a *recycled* arena region
    /// (mark/reset) keeps producing the identical bits — stale buffer
    /// contents never leak through.
    #[test]
    fn composite_chain_survives_arena_recycling(seed in 0u64..10_000) {
        let x = rand_array(5, 4, seed);
        let w = rand_array(4, 6, seed ^ 6);
        let gamma = rand_array(1, 6, seed ^ 7);
        let eta = rand_array(1, 6, seed ^ 8);
        let chain = |g: &dyn Exec| {
            let h = g.tanh(g.matmul(g.constant(x.clone()), g.constant(w.clone())));
            let f = g.film(h, g.constant(gamma.clone()), g.constant(eta.clone()));
            g.log_softmax_rows(g.relu(f))
        };
        let reference = {
            let g = Graph::eval();
            let v = chain(&g);
            Exec::value(&g, v)
        };
        let ex = Infer::new();
        let mark = ex.mark();
        for round in 0..3 {
            let v = chain(&ex);
            let got = Exec::value(&ex, v);
            assert_bitwise(&reference, &got, &format!("recycled round {round}"));
            ex.reset_to(mark);
        }
    }

    /// Parameter binding agrees across executors: repeated binds return the
    /// same handle, values match the store bitwise, and `freeze` is a no-op
    /// on the arena.
    #[test]
    fn param_binding_bitwise_equal(seed in 0u64..10_000) {
        let mut store = ParamStore::new();
        let id = store.add("w", rand_array(3, 4, seed));
        let (tape, arena) = on_both(|g| {
            g.freeze(&store);
            let first = g.param(&store, id);
            let again = g.param(&store, id);
            assert_eq!(first, again, "repeated bind must return the same handle");
            g.add_scalar(first, 0.25)
        });
        assert_bitwise(&tape, &arena, "param chain");
    }
}

/// Both executors run dropout as the identity outside `Train` mode and
/// consume no RNG draws — prediction paths stay deterministic.
#[test]
fn dropout_is_inert_outside_train_mode() {
    let x = rand_array(4, 5, 9);
    for (name, result) in [
        ("tape", {
            let g = Graph::eval();
            assert_eq!(g.mode(), ExecMode::Eval);
            let mut rng = Rng::new(7);
            let v = g.dropout(g.constant(x.clone()), 0.5, &mut rng);
            assert_eq!(rng.below(1 << 30), Rng::new(7).below(1 << 30));
            Exec::value(&g, v)
        }),
        ("arena", {
            let ex = Infer::new();
            assert_eq!(ex.mode(), ExecMode::Eval);
            let mut rng = Rng::new(7);
            let v = ex.dropout(ex.constant(x.clone()), 0.5, &mut rng);
            assert_eq!(rng.below(1 << 30), Rng::new(7).below(1 << 30));
            Exec::value(&ex, v)
        }),
    ] {
        assert_bitwise(&x, &result, name);
    }
}
