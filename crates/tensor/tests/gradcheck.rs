//! Numerical gradient verification for every differentiable graph op.
//!
//! For each op we treat the input as a parameter, project the output with a
//! fixed random matrix to obtain a scalar loss, and compare the analytic
//! gradient from `Graph::backward` against central finite differences. Ops
//! with kinks (ReLU, column-max) are sampled away from their non-smooth
//! points.

use fewner_tensor::{Array, Graph, ParamStore, Var};
use fewner_util::Rng;
use proptest::prelude::*;

/// Central-difference step for f32 work.
const EPS: f32 = 3e-3;

/// Builds `loss = Σ (f(x) ⊙ R)` and checks `dloss/dx` numerically.
///
/// `f` must be a pure function of its input var (it may capture constants).
fn gradcheck(
    input: Array,
    seed: u64,
    f: impl Fn(&Graph, &ParamStore, Var) -> Var,
) -> Result<(), String> {
    let mut store = ParamStore::new();
    let id = store.add("x", input.clone());

    // Fixed projection so every output element influences the scalar loss.
    let build_loss = |store: &ParamStore| -> (Graph, f32, Option<Array>) {
        let g = Graph::new();
        let x = g.param(store, id);
        let y = f(&g, store, x);
        let (r, c) = g.shape(y);
        let mut prng = Rng::new(seed ^ 0x5EED);
        let proj = Array::uniform(r, c, -1.0, 1.0, &mut prng);
        let loss = g.sum_all(g.mul(y, g.constant(proj)));
        let loss_value = g.value(loss).scalar_value();
        let grad = g
            .backward(loss)
            .ok()
            .and_then(|gr| gr.for_store(store).get(id).cloned());
        (g, loss_value, grad)
    };

    let (_, _, analytic) = build_loss(&store);
    let analytic = analytic.ok_or("no analytic gradient produced")?;

    let (rows, cols) = input.shape();
    for r in 0..rows {
        for c in 0..cols {
            let orig = input.at(r, c);
            let mut plus = input.clone();
            *plus.at_mut(r, c) = orig + EPS;
            store.set(id, plus);
            let (_, loss_plus, _) = build_loss(&store);

            let mut minus = input.clone();
            *minus.at_mut(r, c) = orig - EPS;
            store.set(id, minus);
            let (_, loss_minus, _) = build_loss(&store);
            store.set(id, input.clone());

            let numeric = (loss_plus - loss_minus) / (2.0 * EPS);
            let a = analytic.at(r, c);
            let tol = 2e-2 + 3e-2 * numeric.abs().max(a.abs());
            if (a - numeric).abs() > tol {
                return Err(format!(
                    "grad mismatch at ({r}, {c}): analytic {a} vs numeric {numeric}"
                ));
            }
        }
    }
    Ok(())
}

fn rand_array(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    Array::uniform(rows, cols, -1.5, 1.5, &mut rng)
}

/// Random array whose entries stay ≥ `margin` away from zero (for ReLU).
fn rand_array_off_zero(rows: usize, cols: usize, seed: u64, margin: f32) -> Array {
    let mut rng = Rng::new(seed);
    let mut a = Array::zeros(rows, cols);
    for v in a.data_mut() {
        let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
        *v = sign * rng.uniform(margin, 1.5);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn grad_add_broadcast(seed in 0u64..1000, rows in 1usize..5, cols in 1usize..5) {
        let other = rand_array(1, cols, seed ^ 1);
        gradcheck(rand_array(rows, cols, seed), seed, move |g, _, x| {
            g.add(x, g.constant(other.clone()))
        }).unwrap();
    }

    #[test]
    fn grad_sub_both_sides(seed in 0u64..1000, rows in 1usize..5, cols in 1usize..5) {
        let other = rand_array(rows, cols, seed ^ 2);
        gradcheck(rand_array(rows, cols, seed), seed, move |g, _, x| {
            g.sub(g.constant(other.clone()), x)
        }).unwrap();
    }

    #[test]
    fn grad_mul_broadcast_col(seed in 0u64..1000, rows in 1usize..5, cols in 1usize..5) {
        let other = rand_array(rows, 1, seed ^ 3);
        gradcheck(rand_array(rows, cols, seed), seed, move |g, _, x| {
            g.mul(x, g.constant(other.clone()))
        }).unwrap();
    }

    #[test]
    fn grad_matmul_left_and_right(seed in 0u64..1000, m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let rhs = rand_array(k, n, seed ^ 4);
        gradcheck(rand_array(m, k, seed), seed, move |g, _, x| {
            g.matmul(x, g.constant(rhs.clone()))
        }).unwrap();
        let lhs = rand_array(m, k, seed ^ 5);
        gradcheck(rand_array(k, n, seed.wrapping_add(9)), seed, move |g, _, x| {
            g.matmul(g.constant(lhs.clone()), x)
        }).unwrap();
    }

    #[test]
    fn grad_activations(seed in 0u64..1000, rows in 1usize..5, cols in 1usize..5) {
        gradcheck(rand_array(rows, cols, seed), seed, |g, _, x| g.sigmoid(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 6), seed, |g, _, x| g.tanh(x)).unwrap();
        gradcheck(rand_array_off_zero(rows, cols, seed ^ 7, 0.05), seed, |g, _, x| g.relu(x)).unwrap();
    }

    #[test]
    fn grad_reductions(seed in 0u64..1000, rows in 1usize..5, cols in 1usize..5) {
        gradcheck(rand_array(rows, cols, seed), seed, |g, _, x| g.sum_all(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 8), seed, |g, _, x| g.mean_all(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 9), seed, |g, _, x| g.col_sum(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 10), seed, |g, _, x| g.row_sum(x)).unwrap();
    }

    #[test]
    fn grad_logspace_ops(seed in 0u64..1000, rows in 2usize..5, cols in 2usize..5) {
        gradcheck(rand_array(rows, cols, seed), seed, |g, _, x| g.col_lse(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 11), seed, |g, _, x| g.lse_all(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 12), seed, |g, _, x| g.log_softmax_rows(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 13), seed, |g, _, x| g.softmax_rows(x)).unwrap();
    }

    #[test]
    fn grad_structural_ops(seed in 0u64..1000, rows in 2usize..6, cols in 2usize..5) {
        gradcheck(rand_array(rows, cols, seed), seed, |g, _, x| g.transpose(x)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 14), seed, move |g, _, x| g.row(x, rows - 1)).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 15), seed, move |g, _, x| {
            g.slice_cols(x, 1, cols - 1)
        }).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 16), seed, |g, _, x| {
            g.concat_cols(&[x, x])
        }).unwrap();
        gradcheck(rand_array(rows, cols, seed ^ 17), seed, |g, _, x| {
            g.concat_rows(&[x, x])
        }).unwrap();
    }

    #[test]
    fn grad_unfold_and_gather(seed in 0u64..1000, rows in 3usize..6, cols in 1usize..4) {
        gradcheck(rand_array(rows, cols, seed), seed, |g, _, x| g.unfold(x, 2)).unwrap();
        let idx = vec![0usize, rows - 1, 0];
        gradcheck(rand_array(rows, cols, seed ^ 18), seed, move |g, _, x| {
            g.gather_rows(x, &idx)
        }).unwrap();
        let coords = vec![(0usize, 0usize), (rows - 1, cols - 1), (0, 0)];
        gradcheck(rand_array(rows, cols, seed ^ 19), seed, move |g, _, x| {
            g.gather_sum(x, &coords)
        }).unwrap();
    }

    #[test]
    fn grad_composite_film_layer(seed in 0u64..1000, rows in 1usize..5, dim in 1usize..5) {
        // FiLM: x is the conditioning source; gamma/eta derived from it.
        let h = rand_array(rows, dim, seed ^ 20);
        gradcheck(rand_array(1, dim, seed), seed, move |g, _, x| {
            let gamma = g.add_scalar(x, 1.0);
            let eta = g.mul_scalar(x, 0.5);
            g.film(g.constant(h.clone()), gamma, eta)
        }).unwrap();
    }

    #[test]
    fn grad_deep_composition(seed in 0u64..1000) {
        // A GRU-like composite: gates, elementwise mixing, matmul chain.
        let w = rand_array(4, 4, seed ^ 21);
        gradcheck(rand_array(2, 4, seed), seed, move |g, _, x| {
            let z = g.sigmoid(g.matmul(x, g.constant(w.clone())));
            let n = g.tanh(x);
            g.add(g.mul(g.one_minus(z), n), g.mul(z, x))
        }).unwrap();
    }
}

#[test]
fn grad_reshape() {
    gradcheck(rand_array(2, 6, 31), 31, |g, _, x| {
        let r = g.reshape(x, 4, 3);
        g.matmul(r, g.constant(rand_array(3, 2, 32)))
    })
    .unwrap();
}

#[test]
fn grad_col_max_away_from_ties() {
    // Deterministic input with a unique max per column.
    let x = Array::from_vec(3, 2, vec![0.1, 5.0, 3.0, 1.0, 1.0, 2.0]);
    gradcheck(x, 99, |g, _, v| g.col_max(v)).unwrap();
}

#[test]
fn grad_second_use_of_same_param() {
    // x used twice through different paths must accumulate correctly.
    gradcheck(rand_array(2, 3, 7), 7, |g, _, x| {
        g.add(g.mul(x, x), g.mul_scalar(x, 0.3))
    })
    .unwrap();
}
