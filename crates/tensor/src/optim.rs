//! First-order optimizers.
//!
//! The paper uses plain SGD with learning rate α = 0.1 for the inner loop
//! (Eq. 5) and Adam-style meta-optimisation with β = 8·10⁻⁴, gradient
//! clipping at 5.0, L2 regularisation 10⁻⁷ and a ×0.9 learning-rate decay
//! every 5000 tasks for the outer loop (§4.1.3). Both optimizers operate on
//! a ([`ParamStore`], [`ParamGrads`]) pair so the same code drives θ, φ and
//! every baseline.

use fewner_util::{Error, FromJson, Json, Result, ToJson};

use crate::array::Array;
use crate::params::{ParamGrads, ParamStore};

/// Serialises a moment buffer (`None` slots become JSON `null`).
fn moments_to_json(moments: &[Option<Array>]) -> Json {
    Json::Arr(
        moments
            .iter()
            .map(|m| m.as_ref().map_or(Json::Null, ToJson::to_json))
            .collect(),
    )
}

fn moments_from_json(json: &Json) -> Result<Vec<Option<Array>>> {
    json.as_arr()?
        .iter()
        .map(|m| match m {
            Json::Null => Ok(None),
            other => Array::from_json(other).map(Some),
        })
        .collect()
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// Decoupled L2 weight decay applied before the step.
    pub weight_decay: f32,
    /// Global-norm gradient clip (∞ disables).
    pub clip_norm: f32,
    velocity: Vec<Option<Array>>,
}

impl Sgd {
    /// Plain SGD as used for the FEWNER inner loop.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: f32::INFINITY,
            velocity: Vec::new(),
        }
    }

    /// Adds momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Sgd {
        self.momentum = momentum;
        self
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Sgd {
        self.weight_decay = wd;
        self
    }

    /// Adds global-norm clipping.
    pub fn with_clip(mut self, clip: f32) -> Sgd {
        self.clip_norm = clip;
        self
    }

    /// Captures the optimizer's mutable state (learning rate + velocity)
    /// for a training snapshot. The structural hyper-parameters (momentum,
    /// weight decay, clip) are configuration, rebuilt by the caller.
    pub fn to_saved(&self) -> SavedSgd {
        SavedSgd {
            lr: self.lr,
            velocity: self.velocity.clone(),
        }
    }

    /// Restores state captured with [`Sgd::to_saved`].
    pub fn load_saved(&mut self, saved: &SavedSgd) {
        self.lr = saved.lr;
        self.velocity = saved.velocity.clone();
    }

    /// Applies one update. Rejects non-finite gradients rather than
    /// poisoning the parameters.
    pub fn step(&mut self, params: &mut ParamStore, grads: &ParamGrads) -> Result<()> {
        if !grads.all_finite() {
            return Err(Error::NonFinite {
                context: "SGD gradients".to_string(),
            });
        }
        let mut grads = grads.clone();
        if self.clip_norm.is_finite() {
            grads.clip_global_norm(self.clip_norm);
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![None; params.len()];
        }
        for i in 0..params.len() {
            let Some(g) = grads.get_at(i) else { continue };
            if self.weight_decay > 0.0 {
                let decay = self.weight_decay;
                let current = params.value_at(i).clone();
                params.value_mut(i).axpy(-self.lr * decay, &current);
            }
            if self.momentum > 0.0 {
                let v = self.velocity[i].get_or_insert_with(|| Array::zeros(g.rows(), g.cols()));
                v.scale_in_place(self.momentum);
                v.axpy(1.0, g);
                let v_snapshot = v.clone();
                params.value_mut(i).axpy(-self.lr, &v_snapshot);
            } else {
                params.value_mut(i).axpy(-self.lr, g);
            }
        }
        Ok(())
    }
}

/// Adam (Kingma & Ba) with decoupled weight decay and global-norm clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (β in the paper's outer loop).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// Global-norm gradient clip (∞ disables).
    pub clip_norm: f32,
    t: u64,
    m: Vec<Option<Array>>,
    v: Vec<Option<Array>>,
}

impl Adam {
    /// Adam with standard moment coefficients.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: f32::INFINITY,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Adam {
        self.weight_decay = wd;
        self
    }

    /// Adds global-norm clipping.
    pub fn with_clip(mut self, clip: f32) -> Adam {
        self.clip_norm = clip;
        self
    }

    /// Multiplies the learning rate (used for the ×0.9 / 5000-task decay).
    pub fn decay_lr(&mut self, factor: f32) {
        self.lr *= factor;
    }

    /// Captures the optimizer's mutable state — the (possibly decayed)
    /// learning rate, the step count `t`, and both moment buffers — for a
    /// training snapshot. A resumed run restores this so the bias
    /// correction and moment trajectories continue exactly where the
    /// interrupted run stood; the structural hyper-parameters (β₁, β₂, ε,
    /// weight decay, clip) are configuration, rebuilt by the caller.
    pub fn to_saved(&self) -> SavedAdam {
        SavedAdam {
            lr: self.lr,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured with [`Adam::to_saved`].
    pub fn load_saved(&mut self, saved: &SavedAdam) {
        self.lr = saved.lr;
        self.t = saved.t;
        self.m = saved.m.clone();
        self.v = saved.v.clone();
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut ParamStore, grads: &ParamGrads) -> Result<()> {
        if !grads.all_finite() {
            return Err(Error::NonFinite {
                context: "Adam gradients".to_string(),
            });
        }
        let mut grads = grads.clone();
        if self.clip_norm.is_finite() {
            grads.clip_global_norm(self.clip_norm);
        }
        if self.m.len() != params.len() {
            self.m = vec![None; params.len()];
            self.v = vec![None; params.len()];
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let Some(g) = grads.get_at(i) else { continue };
            let m = self.m[i].get_or_insert_with(|| Array::zeros(g.rows(), g.cols()));
            let v = self.v[i].get_or_insert_with(|| Array::zeros(g.rows(), g.cols()));
            for ((mv, vv), &gv) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(g.data())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            if self.weight_decay > 0.0 {
                let decay = self.weight_decay;
                let current = params.value_at(i).clone();
                params.value_mut(i).axpy(-self.lr * decay, &current);
            }
            let (lr, eps) = (self.lr, self.eps);
            let m_snapshot = self.m[i].as_ref().unwrap().clone();
            let v_snapshot = self.v[i].as_ref().unwrap().clone();
            let target = params.value_mut(i);
            for ((t, &mv), &vv) in target
                .data_mut()
                .iter_mut()
                .zip(m_snapshot.data())
                .zip(v_snapshot.data())
            {
                let m_hat = mv / bc1;
                let v_hat = vv / bc2;
                *t -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        Ok(())
    }
}

/// Serialisable mutable state of an [`Sgd`] optimizer.
#[derive(Debug, Clone)]
pub struct SavedSgd {
    /// Current learning rate.
    pub lr: f32,
    /// Momentum velocity per parameter slot (`None` = not yet touched).
    pub velocity: Vec<Option<Array>>,
}

impl ToJson for SavedSgd {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lr".into(), Json::from(self.lr)),
            ("velocity".into(), moments_to_json(&self.velocity)),
        ])
    }
}

impl FromJson for SavedSgd {
    fn from_json(json: &Json) -> Result<SavedSgd> {
        Ok(SavedSgd {
            lr: json.field("lr")?.as_f32()?,
            velocity: moments_from_json(json.field("velocity")?)?,
        })
    }
}

/// Serialisable mutable state of an [`Adam`] optimizer.
#[derive(Debug, Clone)]
pub struct SavedAdam {
    /// Current (decayed) learning rate.
    pub lr: f32,
    /// Step count driving the bias correction.
    pub t: u64,
    /// First moments per parameter slot.
    pub m: Vec<Option<Array>>,
    /// Second moments per parameter slot.
    pub v: Vec<Option<Array>>,
}

impl ToJson for SavedAdam {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lr".into(), Json::from(self.lr)),
            ("t".into(), Json::from(self.t)),
            ("m".into(), moments_to_json(&self.m)),
            ("v".into(), moments_to_json(&self.v)),
        ])
    }
}

impl FromJson for SavedAdam {
    fn from_json(json: &Json) -> Result<SavedAdam> {
        Ok(SavedAdam {
            lr: json.field("lr")?.as_f32()?,
            t: json.field("t")?.as_u64()?,
            m: moments_from_json(json.field("m")?)?,
            v: moments_from_json(json.field("v")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::params::ParamStore;

    /// Minimises (w - 3)^2 and checks convergence.
    fn quadratic_converges(mut step: impl FnMut(&mut ParamStore, &ParamGrads)) -> f32 {
        let mut params = ParamStore::new();
        let id = params.add("w", Array::scalar(0.0));
        for _ in 0..300 {
            let g = Graph::new();
            let w = g.param(&params, id);
            let diff = g.add_scalar(w, -3.0);
            let loss = g.sum_all(g.mul(diff, diff));
            let grads = g.backward(loss).unwrap().for_store(&params);
            step(&mut params, &grads);
        }
        params.value_at(0).scalar_value()
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_converges(|p, g| opt.step(p, g).unwrap());
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_minimises_quadratic() {
        let mut opt = Sgd::new(0.02).with_momentum(0.9);
        let w = quadratic_converges(|p, g| opt.step(p, g).unwrap());
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = quadratic_converges(|p, g| opt.step(p, g).unwrap());
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn clipping_bounds_the_step() {
        let mut params = ParamStore::new();
        let id = params.add("w", Array::scalar(0.0));
        let mut grads = ParamGrads::zeros_like(&params);
        grads.accumulate(id.index(), &Array::scalar(1000.0));
        let mut opt = Sgd::new(1.0).with_clip(5.0);
        opt.step(&mut params, &grads).unwrap();
        // Step must be exactly lr * clipped = 5.0.
        assert!((params.value_at(0).scalar_value() + 5.0).abs() < 1e-5);
    }

    #[test]
    fn non_finite_gradients_rejected_and_params_untouched() {
        let mut params = ParamStore::new();
        let id = params.add("w", Array::scalar(1.5));
        let mut grads = ParamGrads::zeros_like(&params);
        grads.accumulate(id.index(), &Array::scalar(f32::NAN));
        let mut sgd = Sgd::new(0.1);
        assert!(sgd.step(&mut params, &grads).is_err());
        assert_eq!(params.value_at(0).scalar_value(), 1.5);
        let mut adam = Adam::new(0.1);
        assert!(adam.step(&mut params, &grads).is_err());
        assert_eq!(params.value_at(0).scalar_value(), 1.5);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut params = ParamStore::new();
        let id = params.add("w", Array::scalar(10.0));
        let grads = ParamGrads::zeros_like(&params);
        // No gradient at all: decay alone must still shrink w... but slots
        // without gradients are skipped, so supply a zero gradient.
        let mut g2 = grads.clone();
        g2.accumulate(id.index(), &Array::scalar(0.0));
        let mut opt = Sgd::new(1.0).with_weight_decay(0.1);
        opt.step(&mut params, &g2).unwrap();
        assert!((params.value_at(0).scalar_value() - 9.0).abs() < 1e-5);
    }

    #[test]
    fn adam_state_round_trip_resumes_bitwise_identically() {
        // Drive two optimizers: one straight through 12 steps, one
        // snapshotted-and-restored (through JSON) after 6. Identical final
        // parameters prove the moments, step count and lr all round-trip.
        let run = |resume_at: Option<usize>| -> f32 {
            let mut params = ParamStore::new();
            let id = params.add("w", Array::scalar(0.0));
            let mut opt = Adam::new(0.05).with_clip(2.0);
            for step in 0..12 {
                if resume_at == Some(step) {
                    let json = opt.to_saved().to_json().to_string();
                    let saved = SavedAdam::from_json(&Json::parse(&json).unwrap()).unwrap();
                    opt = Adam::new(0.05).with_clip(2.0);
                    opt.load_saved(&saved);
                }
                let mut grads = ParamGrads::zeros_like(&params);
                let w = params.value_at(0).scalar_value();
                grads.accumulate(id.index(), &Array::scalar(2.0 * (w - 3.0)));
                opt.step(&mut params, &grads).unwrap();
            }
            params.value_at(0).scalar_value()
        };
        let straight = run(None);
        let resumed = run(Some(6));
        assert_eq!(straight.to_bits(), resumed.to_bits());
    }

    #[test]
    fn sgd_state_round_trip_preserves_velocity() {
        let mut params = ParamStore::new();
        let id = params.add("w", Array::scalar(0.0));
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut grads = ParamGrads::zeros_like(&params);
        grads.accumulate(id.index(), &Array::scalar(1.0));
        opt.step(&mut params, &grads).unwrap();
        let json = opt.to_saved().to_json().to_string();
        let saved = SavedSgd::from_json(&Json::parse(&json).unwrap()).unwrap();
        let mut fresh = Sgd::new(0.1).with_momentum(0.9);
        fresh.load_saved(&saved);
        let mut p2 = ParamStore::new();
        let id2 = p2.add("w", Array::scalar(params.value_at(0).scalar_value()));
        let mut g2 = ParamGrads::zeros_like(&p2);
        g2.accumulate(id2.index(), &Array::scalar(1.0));
        fresh.step(&mut p2, &g2).unwrap();
        opt.step(&mut params, &grads).unwrap();
        assert_eq!(
            params.value_at(0).scalar_value().to_bits(),
            p2.value_at(0).scalar_value().to_bits()
        );
    }

    #[test]
    fn adam_lr_decay() {
        let mut opt = Adam::new(8e-4);
        opt.decay_lr(0.9);
        assert!((opt.lr - 7.2e-4).abs() < 1e-9);
    }
}
