//! The gradient-free inference executor.
//!
//! [`Infer`] evaluates the [`Exec`] op vocabulary eagerly into a slot arena:
//! no `Op` nodes are recorded, no parent indices or gradient routing tables
//! are kept, and result buffers are drawn from (and recycled into) a free
//! pool of `Vec<f32>` allocations instead of being freshly allocated per op.
//!
//! The intended use is FEWNER's serving shape — adapt once per task, then
//! predict over many query sentences. Per-task values (bound parameters,
//! CRF transitions, FiLM projections) are computed first; [`Infer::mark`]
//! then fences the arena, and after each sentence [`Infer::reset_to`]
//! truncates back to the fence, returning every sentence-local buffer to the
//! pool for the next sentence to reuse. Across a whole task, steady-state
//! inference performs no per-sentence heap allocation for arena slots.
//!
//! Values are **bitwise identical** to the tape's forward pass: both
//! executors evaluate the same op vocabulary over kernels that
//! zero-initialise matmul accumulators the same way, and every kernel the
//! selected [`KernelBackend`] dispatches on this forward path is bitwise
//! equal to the scalar oracle the tape runs (see [`crate::backend`]).
//! [`Infer::new`] picks the process default (`FEWNER_KERNELS`, normally
//! the blocked fast path); [`Infer::with_backend`] pins one explicitly.
//!
//! `Infer` has no gradient surface — there is no `backward` to call:
//!
//! ```compile_fail
//! use fewner_tensor::{Array, Exec, Infer};
//! let ex = Infer::new();
//! let x = ex.constant(Array::scalar(1.0));
//! let y = ex.mul(x, x);
//! ex.backward(y); // ERROR: no method `backward` on `Infer`
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::array::Array;
use crate::backend::KernelBackend;
use crate::exec::{Exec, ExecMode, Var};
use crate::kernels;
use crate::params::{ParamId, ParamStore};

/// Buffer-pool and arena statistics for one [`Infer`] executor.
///
/// `pool_hits` / `pool_misses` count [`Infer`] scratch-buffer requests
/// served from the recycle pool versus fresh heap allocations; their ratio
/// is the direct measure of how well the serving path amortises allocation.
/// `high_water` is the largest number of live arena slots observed, i.e.
/// the executor's peak working-set in buffers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Scratch-buffer requests satisfied by recycling a pooled buffer.
    pub pool_hits: u64,
    /// Scratch-buffer requests that had to allocate fresh memory.
    pub pool_misses: u64,
    /// Peak number of live arena slots over the executor's lifetime.
    pub high_water: u64,
}

/// Process-wide accumulation of every dropped [`Infer`]'s statistics, so
/// serving code can report pool behaviour without threading each executor's
/// stats outward. Relaxed ordering suffices: these are monotone counters
/// read for diagnostics, never for synchronisation.
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

/// Aggregate statistics from every [`Infer`] dropped so far in this process
/// (`high_water` is the max across executors, the counters are sums).
pub fn global_stats() -> InferStats {
    InferStats {
        pool_hits: GLOBAL_HITS.load(Ordering::Relaxed),
        pool_misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        high_water: GLOBAL_HIGH_WATER.load(Ordering::Relaxed),
    }
}

/// A slot either owns its buffer (recyclable) or shares a parameter /
/// extracted value behind an `Arc`.
enum Slot {
    Owned(Array),
    Shared(Arc<Array>),
}

impl Slot {
    fn array(&self) -> &Array {
        match self {
            Slot::Owned(a) => a,
            Slot::Shared(a) => a,
        }
    }
}

/// Eager, gradient-free executor with a reusable scratch-buffer arena.
///
/// See the [module docs](self) for the reuse protocol. Like [`crate::Graph`],
/// an `Infer` is single-threaded (`RefCell` interior mutability) and cheap to
/// construct; unlike the tape it is intended to live for a whole task so the
/// buffer pool amortises across sentences.
pub struct Infer {
    slots: RefCell<Vec<Slot>>,
    pool: RefCell<Vec<Vec<f32>>>,
    bound: RefCell<HashMap<ParamId, Var>>,
    stats: Cell<InferStats>,
    backend: KernelBackend,
}

impl Default for Infer {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Infer {
    fn drop(&mut self) {
        let s = self.stats.get();
        GLOBAL_HITS.fetch_add(s.pool_hits, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(s.pool_misses, Ordering::Relaxed);
        GLOBAL_HIGH_WATER.fetch_max(s.high_water, Ordering::Relaxed);
    }
}

impl Infer {
    /// Creates an empty arena on the process-default kernel backend
    /// (`FEWNER_KERNELS`, normally the blocked fast path).
    pub fn new() -> Infer {
        Infer::with_backend(KernelBackend::from_env())
    }

    /// Creates an empty arena pinned to an explicit kernel backend.
    pub fn with_backend(backend: KernelBackend) -> Infer {
        Infer {
            slots: RefCell::new(Vec::with_capacity(256)),
            pool: RefCell::new(Vec::new()),
            bound: RefCell::new(HashMap::new()),
            stats: Cell::new(InferStats::default()),
            backend,
        }
    }

    /// The kernel backend this executor dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// This executor's buffer-pool statistics so far.
    pub fn stats(&self) -> InferStats {
        self.stats.get()
    }

    fn note_high_water(&self, live: usize) {
        let mut s = self.stats.get();
        s.high_water = s.high_water.max(live as u64);
        self.stats.set(s);
    }

    /// Fences the arena: slots created so far survive [`Infer::reset_to`].
    pub fn mark(&self) -> usize {
        self.slots.borrow().len()
    }

    /// Truncates the arena back to a [`Infer::mark`] fence, recycling every
    /// owned buffer above it into the free pool. `Var`s issued above the
    /// fence are invalidated; `Var`s at or below it stay usable.
    pub fn reset_to(&self, mark: usize) {
        let mut slots = self.slots.borrow_mut();
        let mut pool = self.pool.borrow_mut();
        while slots.len() > mark {
            if let Some(Slot::Owned(a)) = slots.pop() {
                pool.push(a.take_data());
            }
        }
        self.bound.borrow_mut().retain(|_, v| v.0 < mark);
    }

    /// Number of live slots (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.slots.borrow().len()
    }

    /// True when the arena holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.borrow().is_empty()
    }

    /// Number of buffers currently parked in the free pool (tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.borrow().len()
    }

    /// A zero-filled `rows × cols` array, reusing a pooled buffer when one
    /// is available. Zero-filling keeps accumulating kernels (matmul)
    /// bitwise identical to the tape's `Array::zeros` starting point.
    fn alloc(&self, rows: usize, cols: usize) -> Array {
        let mut stats = self.stats.get();
        let data = match self.pool.borrow_mut().pop() {
            Some(mut buf) => {
                stats.pool_hits += 1;
                buf.clear();
                buf.resize(rows * cols, 0.0);
                buf
            }
            None => {
                stats.pool_misses += 1;
                vec![0.0; rows * cols]
            }
        };
        self.stats.set(stats);
        Array::from_vec(rows, cols, data)
    }

    fn push(&self, value: Array) -> Var {
        let mut slots = self.slots.borrow_mut();
        slots.push(Slot::Owned(value));
        let live = slots.len();
        drop(slots);
        self.note_high_water(live);
        Var(live - 1)
    }

    /// Unary op into a recycled buffer.
    fn unary(&self, a: Var, f: impl Fn(f32) -> f32) -> Array {
        let slots = self.slots.borrow();
        let src = slots[a.0].array();
        let (r, c) = src.shape();
        let mut out = self.alloc(r, c);
        for (o, &x) in out.data_mut().iter_mut().zip(src.data()) {
            *o = f(x);
        }
        out
    }

    /// Broadcasting binary op into a recycled buffer.
    fn binary(&self, a: Var, b: Var, op: &str, f: impl Fn(f32, f32) -> f32) -> Array {
        let slots = self.slots.borrow();
        let (x, y) = (slots[a.0].array(), slots[b.0].array());
        let (r, c) = kernels::broadcast_shape(x.shape(), y.shape(), op);
        let mut out = self.alloc(r, c);
        self.backend.bcast_zip_into(x, y, &mut out, f);
        out
    }
}

impl Exec for Infer {
    fn constant(&self, value: Array) -> Var {
        self.push(value)
    }

    fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.bound.borrow().get(&id) {
            return v;
        }
        let live = {
            let mut slots = self.slots.borrow_mut();
            slots.push(Slot::Shared(Arc::clone(store.value(id))));
            slots.len()
        };
        self.note_high_water(live);
        let v = Var(live - 1);
        self.bound.borrow_mut().insert(id, v);
        v
    }

    fn freeze(&self, _store: &ParamStore) {
        // Nothing to do: no gradients are ever computed here.
    }

    fn value(&self, v: Var) -> Arc<Array> {
        let mut slots = self.slots.borrow_mut();
        let placeholder = Slot::Shared(Arc::new(Array::from_vec(0, 0, Vec::new())));
        let shared = match std::mem::replace(&mut slots[v.0], placeholder) {
            Slot::Owned(a) => Arc::new(a),
            Slot::Shared(a) => a,
        };
        slots[v.0] = Slot::Shared(Arc::clone(&shared));
        shared
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.slots.borrow()[v.0].array().shape()
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Eval
    }

    fn add(&self, a: Var, b: Var) -> Var {
        let out = self.binary(a, b, "add", |x, y| x + y);
        self.push(out)
    }

    fn sub(&self, a: Var, b: Var) -> Var {
        let out = self.binary(a, b, "sub", |x, y| x - y);
        self.push(out)
    }

    fn mul(&self, a: Var, b: Var) -> Var {
        let out = self.binary(a, b, "mul", |x, y| x * y);
        self.push(out)
    }

    fn add_scalar(&self, a: Var, c: f32) -> Var {
        let out = self.unary(a, |x| x + c);
        self.push(out)
    }

    fn mul_scalar(&self, a: Var, c: f32) -> Var {
        let out = self.unary(a, |x| x * c);
        self.push(out)
    }

    fn matmul(&self, a: Var, b: Var) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let (x, y) = (slots[a.0].array(), slots[b.0].array());
            let (sa, sb) = (x.shape(), y.shape());
            assert_eq!(
                sa.1, sb.0,
                "matmul: [{}, {}] x [{}, {}]",
                sa.0, sa.1, sb.0, sb.1
            );
            let mut out = self.alloc(sa.0, sb.1);
            self.backend.matmul_into(x, y, &mut out, true);
            out
        };
        self.push(out)
    }

    fn transpose(&self, a: Var) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            let (r, c) = src.shape();
            let mut out = self.alloc(c, r);
            for i in 0..r {
                for (j, &v) in src.row(i).iter().enumerate() {
                    *out.at_mut(j, i) = v;
                }
            }
            out
        };
        self.push(out)
    }

    fn sigmoid(&self, a: Var) -> Var {
        let out = self.unary(a, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(out)
    }

    fn tanh(&self, a: Var) -> Var {
        let out = self.unary(a, f32::tanh);
        self.push(out)
    }

    fn relu(&self, a: Var) -> Var {
        let out = self.unary(a, |x| x.max(0.0));
        self.push(out)
    }

    fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero parts");
        let out = {
            let slots = self.slots.borrow();
            let rows = slots[parts[0].0].array().rows();
            let total: usize = parts.iter().map(|p| slots[p.0].array().cols()).sum();
            let mut out = self.alloc(rows, total);
            let mut offset = 0;
            for p in parts {
                let a = slots[p.0].array();
                assert_eq!(a.rows(), rows, "concat_cols: row mismatch");
                for r in 0..rows {
                    out.row_mut(r)[offset..offset + a.cols()].copy_from_slice(a.row(r));
                }
                offset += a.cols();
            }
            out
        };
        self.push(out)
    }

    fn concat_rows(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero parts");
        let out = {
            let slots = self.slots.borrow();
            let cols = slots[parts[0].0].array().cols();
            let total: usize = parts.iter().map(|p| slots[p.0].array().rows()).sum();
            let mut out = self.alloc(total, cols);
            let mut offset = 0;
            for p in parts {
                let a = slots[p.0].array();
                assert_eq!(a.cols(), cols, "concat_rows: col mismatch");
                for r in 0..a.rows() {
                    out.row_mut(offset + r).copy_from_slice(a.row(r));
                }
                offset += a.rows();
            }
            out
        };
        self.push(out)
    }

    fn row(&self, a: Var, i: usize) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            assert!(i < src.rows(), "row {i} of {} rows", src.rows());
            let mut out = self.alloc(1, src.cols());
            out.row_mut(0).copy_from_slice(src.row(i));
            out
        };
        self.push(out)
    }

    fn slice_cols(&self, a: Var, start: usize, len: usize) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            assert!(start + len <= src.cols(), "slice_cols out of range");
            let mut out = self.alloc(src.rows(), len);
            for r in 0..src.rows() {
                out.row_mut(r)
                    .copy_from_slice(&src.row(r)[start..start + len]);
            }
            out
        };
        self.push(out)
    }

    fn sum_all(&self, a: Var) -> Var {
        let total = self.slots.borrow()[a.0].array().sum();
        let mut out = self.alloc(1, 1);
        *out.at_mut(0, 0) = total;
        self.push(out)
    }

    fn mean_all(&self, a: Var) -> Var {
        let (total, n) = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            (src.sum(), src.len())
        };
        let mut out = self.alloc(1, 1);
        *out.at_mut(0, 0) = total / n as f32;
        self.push(out)
    }

    fn col_sum(&self, a: Var) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            let mut out = self.alloc(1, src.cols());
            for r in 0..src.rows() {
                for (o, &v) in out.row_mut(0).iter_mut().zip(src.row(r)) {
                    *o += v;
                }
            }
            out
        };
        self.push(out)
    }

    fn row_sum(&self, a: Var) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            let mut out = self.alloc(src.rows(), 1);
            for r in 0..src.rows() {
                *out.at_mut(r, 0) = src.row(r).iter().sum();
            }
            out
        };
        self.push(out)
    }

    fn col_max(&self, a: Var) -> Var {
        let (value, _arg) = self.backend.max_cols(self.slots.borrow()[a.0].array());
        self.push(value)
    }

    fn col_lse(&self, a: Var) -> Var {
        let value = self
            .backend
            .logsumexp_cols(self.slots.borrow()[a.0].array());
        self.push(value)
    }

    fn lse_all(&self, a: Var) -> Var {
        let total = kernels::logsumexp_all(self.slots.borrow()[a.0].array());
        let mut out = self.alloc(1, 1);
        *out.at_mut(0, 0) = total;
        self.push(out)
    }

    fn log_softmax_rows(&self, a: Var) -> Var {
        let value = self
            .backend
            .log_softmax_rows(self.slots.borrow()[a.0].array());
        self.push(value)
    }

    fn softmax_rows(&self, a: Var) -> Var {
        let value = self.backend.softmax_rows(self.slots.borrow()[a.0].array());
        self.push(value)
    }

    fn unfold(&self, a: Var, k: usize) -> Var {
        let value = kernels::unfold(self.slots.borrow()[a.0].array(), k);
        self.push(value)
    }

    fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            let mut out = self.alloc(indices.len(), src.cols());
            for (r, &i) in indices.iter().enumerate() {
                assert!(i < src.rows(), "gather_rows: index {i} of {}", src.rows());
                out.row_mut(r).copy_from_slice(src.row(i));
            }
            out
        };
        self.push(out)
    }

    fn reshape(&self, a: Var, rows: usize, cols: usize) -> Var {
        let out = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            assert_eq!(
                src.len(),
                rows * cols,
                "reshape {:?} to [{rows}, {cols}]",
                src.shape()
            );
            let mut out = self.alloc(rows, cols);
            out.data_mut().copy_from_slice(src.data());
            out
        };
        self.push(out)
    }

    fn gather_sum(&self, a: Var, coords: &[(usize, usize)]) -> Var {
        let total = {
            let slots = self.slots.borrow();
            let src = slots[a.0].array();
            let mut total = 0.0;
            for &(r, c) in coords {
                assert!(
                    r < src.rows() && c < src.cols(),
                    "gather_sum: ({r}, {c}) out of {:?}",
                    src.shape()
                );
                total += src.at(r, c);
            }
            total
        };
        let mut out = self.alloc(1, 1);
        *out.at_mut(0, 0) = total;
        self.push(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_recycles_owned_buffers() {
        let ex = Infer::new();
        let base = ex.constant(Array::full(2, 3, 1.0));
        let mark = ex.mark();
        let a = ex.add_scalar(base, 1.0);
        let _ = ex.mul(a, a);
        assert_eq!(ex.len(), mark + 2);
        ex.reset_to(mark);
        assert_eq!(ex.len(), mark);
        assert_eq!(ex.pooled_buffers(), 2);
        // The next sentence draws from the pool instead of allocating.
        let b = ex.add_scalar(base, 2.0);
        assert_eq!(ex.pooled_buffers(), 1);
        assert_eq!(ex.value(b).data(), &[3.0; 6]);
    }

    #[test]
    fn reset_evicts_param_bindings_above_the_fence() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::scalar(7.0));
        let ex = Infer::new();
        let mark = ex.mark();
        let w1 = ex.param(&store, id);
        assert_eq!(ex.param(&store, id), w1, "binding is cached");
        ex.reset_to(mark);
        let w2 = ex.param(&store, id);
        assert_eq!(w2.0, mark, "stale binding must not survive the reset");
        assert_eq!(ex.value(w2).scalar_value(), 7.0);
    }

    #[test]
    fn extracted_values_survive_reset() {
        let ex = Infer::new();
        let mark = ex.mark();
        let x = ex.constant(Array::from_vec(1, 2, vec![1.0, 2.0]));
        let y = ex.mul_scalar(x, 10.0);
        let kept = ex.value(y);
        ex.reset_to(mark);
        assert_eq!(kept.data(), &[10.0, 20.0]);
        // The shared buffer was not recycled into the pool.
        assert_eq!(ex.pooled_buffers(), 1);
    }

    #[test]
    fn stats_track_pool_hits_misses_and_high_water() {
        let ex = Infer::new();
        let base = ex.constant(Array::full(2, 2, 1.0));
        let mark = ex.mark();
        let a = ex.add_scalar(base, 1.0);
        let _ = ex.mul(a, a);
        let s = ex.stats();
        assert_eq!(s.pool_misses, 2, "empty pool: every alloc is a miss");
        assert_eq!(s.pool_hits, 0);
        assert_eq!(s.high_water, 3, "constant + two scratch results");
        ex.reset_to(mark);
        let _ = ex.add_scalar(base, 2.0);
        let s = ex.stats();
        assert_eq!(s.pool_hits, 1, "post-reset alloc recycles a buffer");
        assert_eq!(s.pool_misses, 2);
        drop(ex);
        let g = global_stats();
        assert!(g.pool_hits >= 1 && g.pool_misses >= 2 && g.high_water >= 3);
    }

    #[test]
    fn pool_resizes_buffers_to_fit() {
        let ex = Infer::new();
        let mark = ex.mark();
        let small = ex.constant(Array::full(1, 2, 1.0));
        let _ = ex.add_scalar(small, 0.0);
        ex.reset_to(mark);
        // Reuse the 2-element buffer for a 12-element result: must resize
        // and zero-fill so matmul accumulation starts from zero.
        let a = ex.constant(Array::full(3, 2, 1.0));
        let b = ex.constant(Array::full(2, 4, 1.0));
        let c = ex.matmul(a, b);
        assert_eq!(ex.value(c).data(), &[2.0; 12]);
    }
}
