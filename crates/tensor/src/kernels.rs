//! Pure array math used by the graph's forward and backward passes.
//!
//! These functions know nothing about autodiff; they implement broadcasting,
//! reductions and numerically-stable log-space primitives on [`Array`]s. The
//! graph in [`crate::graph`] composes them into differentiable operations.

use crate::array::Array;

/// Broadcast compatibility: each dimension must match or be 1 on one side.
///
/// Returns the broadcast output shape, panicking with a readable message on
/// incompatible shapes (shape errors in model code are programming errors;
/// the fallible, `Result`-returning surface lives on `Array` itself).
pub fn broadcast_shape(a: (usize, usize), b: (usize, usize), op: &str) -> (usize, usize) {
    let r = match (a.0, b.0) {
        (x, y) if x == y => x,
        (1, y) => y,
        (x, 1) => x,
        _ => panic!("{op}: cannot broadcast rows {:?} vs {:?}", a, b),
    };
    let c = match (a.1, b.1) {
        (x, y) if x == y => x,
        (1, y) => y,
        (x, 1) => x,
        _ => panic!("{op}: cannot broadcast cols {:?} vs {:?}", a, b),
    };
    (r, c)
}

/// Elementwise binary op with broadcasting.
pub fn bcast_zip(a: &Array, b: &Array, op: &str, f: impl Fn(f32, f32) -> f32) -> Array {
    let (r, c) = broadcast_shape(a.shape(), b.shape(), op);
    let mut out = Array::zeros(r, c);
    bcast_zip_into(a, b, &mut out, f);
    out
}

/// [`bcast_zip`] writing into a caller-provided output of the broadcast
/// shape — the allocation-free variant used by the inference arena. Every
/// output element is overwritten.
pub fn bcast_zip_into(a: &Array, b: &Array, out: &mut Array, f: impl Fn(f32, f32) -> f32) {
    let (r, c) = out.shape();
    debug_assert_eq!(
        (r, c),
        broadcast_shape(a.shape(), b.shape(), "bcast_zip_into")
    );
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    for i in 0..r {
        let ai = if ar == 1 { 0 } else { i };
        let bi = if br == 1 { 0 } else { i };
        let arow = a.row(ai);
        let brow = b.row(bi);
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            let av = arow[if ac == 1 { 0 } else { j }];
            let bv = brow[if bc == 1 { 0 } else { j }];
            *o = f(av, bv);
        }
    }
}

/// Reduces `grad` (shape of a broadcast output) back to `shape` by summing
/// over the broadcast dimensions, accumulating into `into`.
pub fn reduce_into(grad: &Array, into: &mut Array) {
    let (gr, gc) = grad.shape();
    let (tr, tc) = into.shape();
    debug_assert!(
        (tr == gr || tr == 1) && (tc == gc || tc == 1),
        "reduce_into: grad {:?} to {:?}",
        grad.shape(),
        into.shape()
    );
    for i in 0..gr {
        let ti = if tr == 1 { 0 } else { i };
        let grow = grad.row(i);
        for (j, &g) in grow.iter().enumerate() {
            let tj = if tc == 1 { 0 } else { j };
            *into.at_mut(ti, tj) += g;
        }
    }
}

/// Accumulates `grad ⊙ broadcast(other)` into `into` (shape of `into` may be
/// a broadcast source). Used by the backward pass of broadcast multiply.
pub fn reduce_mul_into(grad: &Array, other: &Array, into: &mut Array) {
    let (gr, _) = grad.shape();
    let (or_, oc) = other.shape();
    let (tr, tc) = into.shape();
    for i in 0..gr {
        let oi = if or_ == 1 { 0 } else { i };
        let ti = if tr == 1 { 0 } else { i };
        let grow = grad.row(i);
        let orow = other.row(oi);
        for (j, &g) in grow.iter().enumerate() {
            let ov = orow[if oc == 1 { 0 } else { j }];
            let tj = if tc == 1 { 0 } else { j };
            *into.at_mut(ti, tj) += g * ov;
        }
    }
}

/// Numerically-stable log-sum-exp over each column: `[r, c] → [1, c]`.
pub fn logsumexp_cols(a: &Array) -> Array {
    let (r, c) = a.shape();
    let mut out = Array::zeros(1, c);
    for j in 0..c {
        let mut max = f32::NEG_INFINITY;
        for i in 0..r {
            max = max.max(a.at(i, j));
        }
        if max == f32::NEG_INFINITY {
            *out.at_mut(0, j) = f32::NEG_INFINITY;
            continue;
        }
        let mut sum = 0.0f32;
        for i in 0..r {
            sum += (a.at(i, j) - max).exp();
        }
        *out.at_mut(0, j) = max + sum.ln();
    }
    out
}

/// Numerically-stable log-sum-exp over all elements → scalar.
pub fn logsumexp_all(a: &Array) -> f32 {
    let max = a.data().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    let sum: f32 = a.data().iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Row-wise log-softmax.
pub fn log_softmax_rows(a: &Array) -> Array {
    let (r, c) = a.shape();
    let mut out = Array::zeros(r, c);
    for i in 0..r {
        let row = a.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        for (j, o) in out.row_mut(i).iter_mut().enumerate() {
            *o = row[j] - lse;
        }
    }
    out
}

/// Row-wise softmax.
pub fn softmax_rows(a: &Array) -> Array {
    let mut out = log_softmax_rows(a);
    for v in out.data_mut() {
        *v = v.exp();
    }
    out
}

/// Unfolds a `[r, c]` array into sliding windows of `k` rows: `[r-k+1, k*c]`.
///
/// Window `i` is rows `i..i+k` concatenated — the im2col step for 1-D
/// convolution over a character sequence.
pub fn unfold(a: &Array, k: usize) -> Array {
    let (r, c) = a.shape();
    assert!(k >= 1 && k <= r, "unfold: window {k} over {r} rows");
    let out_rows = r - k + 1;
    let mut out = Array::zeros(out_rows, k * c);
    for i in 0..out_rows {
        let orow = out.row_mut(i);
        for j in 0..k {
            orow[j * c..(j + 1) * c].copy_from_slice(a.row(i + j));
        }
    }
    out
}

/// Backward of [`unfold`]: scatters window gradients back to source rows.
pub fn unfold_backward(grad: &Array, k: usize, src_shape: (usize, usize), into: &mut Array) {
    let (r, c) = src_shape;
    debug_assert_eq!(into.shape(), src_shape);
    let out_rows = r - k + 1;
    for i in 0..out_rows {
        let grow = grad.row(i);
        for j in 0..k {
            let dst = into.row_mut(i + j);
            for (d, &g) in dst.iter_mut().zip(&grow[j * c..(j + 1) * c]) {
                *d += g;
            }
        }
    }
}

/// Log-space CRF forward lattice (the α recursion of the paper's Eq. 4).
///
/// `alpha[0][j] = emissions[0][j] + start[0][j]` and
/// `alpha[t][j] = lse_i(alpha[t-1][i] + trans[i][j]) + emissions[t][j]`;
/// returns the full `[T, L]` lattice, so `log Z = lse_j(alpha[T-1][j])`.
///
/// The floating-point bracketing deliberately mirrors the graph-composed
/// recursion in `fewner-models` (`col_lse` of `alphaᵀ + trans`, then `+`
/// the emission row), so the fused kernel is bitwise interchangeable with
/// the op-by-op tape evaluation.
pub fn crf_forward_lattice(emissions: &Array, trans: &Array, start: &Array) -> Array {
    let (len, l) = emissions.shape();
    assert!(len > 0, "crf_forward_lattice: empty sequence");
    assert_eq!(trans.shape(), (l, l), "crf_forward_lattice: trans shape");
    assert_eq!(start.shape(), (1, l), "crf_forward_lattice: start shape");
    let mut alpha = Array::zeros(len, l);
    for j in 0..l {
        *alpha.at_mut(0, j) = emissions.at(0, j) + start.at(0, j);
    }
    for t in 1..len {
        for j in 0..l {
            let mut max = f32::NEG_INFINITY;
            for i in 0..l {
                max = max.max(alpha.at(t - 1, i) + trans.at(i, j));
            }
            let lse = if max == f32::NEG_INFINITY {
                f32::NEG_INFINITY
            } else {
                let mut sum = 0.0f32;
                for i in 0..l {
                    sum += (alpha.at(t - 1, i) + trans.at(i, j) - max).exp();
                }
                max + sum.ln()
            };
            *alpha.at_mut(t, j) = lse + emissions.at(t, j);
        }
    }
    alpha
}

/// Log-space CRF backward lattice: `beta[T-1][j] = 0` and
/// `beta[t][i] = lse_j(trans[i][j] + (emissions[t+1][j] + beta[t+1][j]))`.
///
/// Together with [`crf_forward_lattice`], per-position marginals are
/// `alpha[t][j] + beta[t][j] − log Z`. The inner bracketing (the emission
/// and beta terms are combined first, once per step) is part of the kernel
/// contract: the blocked backend reproduces it exactly.
pub fn crf_backward_lattice(emissions: &Array, trans: &Array) -> Array {
    let (len, l) = emissions.shape();
    assert!(len > 0, "crf_backward_lattice: empty sequence");
    assert_eq!(trans.shape(), (l, l), "crf_backward_lattice: trans shape");
    let mut beta = Array::zeros(len, l);
    let mut eb = vec![0.0f32; l];
    for t in (0..len.saturating_sub(1)).rev() {
        for (j, e) in eb.iter_mut().enumerate() {
            *e = emissions.at(t + 1, j) + beta.at(t + 1, j);
        }
        for i in 0..l {
            let mut max = f32::NEG_INFINITY;
            for (j, &e) in eb.iter().enumerate() {
                max = max.max(trans.at(i, j) + e);
            }
            let lse = if max == f32::NEG_INFINITY {
                f32::NEG_INFINITY
            } else {
                let mut sum = 0.0f32;
                for (j, &e) in eb.iter().enumerate() {
                    sum += (trans.at(i, j) + e - max).exp();
                }
                max + sum.ln()
            };
            *beta.at_mut(t, i) = lse;
        }
    }
    beta
}

/// Column-wise max with argmax indices: `[r, c] → ([1, c], argmax rows)`.
#[allow(clippy::needless_range_loop)]
pub fn max_cols(a: &Array) -> (Array, Vec<usize>) {
    let (r, c) = a.shape();
    assert!(r > 0, "max_cols on empty array");
    let mut out = Array::zeros(1, c);
    let mut arg = vec![0usize; c];
    for j in 0..c {
        let mut best = a.at(0, j);
        for i in 1..r {
            let v = a.at(i, j);
            if v > best {
                best = v;
                arg[j] = i;
            }
        }
        *out.at_mut(0, j) = best;
    }
    (out, arg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_row_vector_add() {
        let a = Array::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Array::from_vec(1, 3, vec![10., 20., 30.]);
        let c = bcast_zip(&a, &b, "add", |x, y| x + y);
        assert_eq!(c.data(), &[11., 22., 33., 14., 25., 36.]);
    }

    #[test]
    fn bcast_col_vector_mul() {
        let a = Array::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Array::from_vec(2, 1, vec![10., 100.]);
        let c = bcast_zip(&a, &b, "mul", |x, y| x * y);
        assert_eq!(c.data(), &[10., 20., 300., 400.]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn bcast_incompatible_panics() {
        let a = Array::zeros(2, 3);
        let b = Array::zeros(3, 3);
        bcast_zip(&a, &b, "add", |x, y| x + y);
    }

    #[test]
    fn reduce_into_sums_broadcast_dims() {
        let grad = Array::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let mut into = Array::zeros(1, 3);
        reduce_into(&grad, &mut into);
        assert_eq!(into.data(), &[5., 7., 9.]);
        let mut scalar = Array::zeros(1, 1);
        reduce_into(&grad, &mut scalar);
        assert_eq!(scalar.data(), &[21.]);
    }

    #[test]
    fn logsumexp_is_stable_and_correct() {
        let a = Array::from_vec(2, 2, vec![1000.0, 0.0, 1000.0, (2.0f32).ln()]);
        let out = logsumexp_cols(&a);
        // col 0: lse(1000, 1000) = 1000 + ln 2.
        assert!((out.at(0, 0) - (1000.0 + 2f32.ln())).abs() < 1e-3);
        // col 1: lse(0, ln 2) = ln 3.
        assert!((out.at(0, 1) - 3f32.ln()).abs() < 1e-5);
        assert_eq!(
            logsumexp_all(&Array::full(1, 1, f32::NEG_INFINITY)),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Array::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = softmax_rows(&a);
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn unfold_matches_hand_layout() {
        // rows: [1,2] [3,4] [5,6]; k=2 -> [[1,2,3,4],[3,4,5,6]]
        let a = Array::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let u = unfold(&a, 2);
        assert_eq!(u.shape(), (2, 4));
        assert_eq!(u.data(), &[1., 2., 3., 4., 3., 4., 5., 6.]);
    }

    #[test]
    fn unfold_backward_scatters() {
        let grad = Array::from_vec(2, 4, vec![1., 1., 1., 1., 1., 1., 1., 1.]);
        let mut into = Array::zeros(3, 2);
        unfold_backward(&grad, 2, (3, 2), &mut into);
        // middle row receives contributions from both windows.
        assert_eq!(into.data(), &[1., 1., 2., 2., 1., 1.]);
    }

    #[test]
    fn max_cols_tracks_argmax() {
        let a = Array::from_vec(3, 2, vec![1., 9., 5., 2., 3., 4.]);
        let (m, arg) = max_cols(&a);
        assert_eq!(m.data(), &[5., 9.]);
        assert_eq!(arg, vec![1, 0]);
    }
}
