//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a tape: every builder method evaluates its result eagerly
//! and records the operation, so construction order is already a topological
//! order and [`Graph::backward`] is a single reverse sweep. One graph is
//! built per forward pass (per task batch) and dropped afterwards.
//!
//! Parameters are *bound* into a graph from one or more [`ParamStore`]s via
//! [`Graph::param`]; leaves share the store's tensor (`Arc`, zero copy) and
//! the backward sweep routes their gradients into per-store accumulators.
//! This is what makes the paper's θ/φ split natural: FEWNER's inner loop
//! asks only for φ's store gradients, the outer loop only for θ's.
//!
//! # Shape errors
//!
//! Builder methods panic on incompatible shapes with a descriptive message.
//! Model architectures fix all shapes at construction time, so a mismatch
//! here is a programming error, not a recoverable condition; the fallible
//! `Result` surface lives on [`Array`] and on the high-level training APIs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use fewner_util::{Error, Result, Rng};

// The tape is deliberately pinned to the scalar kernels (never the blocked
// backend): its forward *and* backward passes define the bit-exact tape
// semantics that training, checkpointing and the sharded byte-compare all
// depend on. The inference arena opts into the fast path instead; see
// `crate::backend` for the equivalence contract.
use crate::array::{matmul_a_bt, matmul_at_b, matmul_into, Array};
use crate::exec::{Exec, ExecMode};
use crate::kernels;
use crate::params::{ParamGrads, ParamId, ParamStore};

pub use crate::exec::Var;

#[derive(Debug)]
enum Op {
    /// Input/constant/parameter leaf. `Some` routes gradients to the store.
    Leaf(Option<ParamId>),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    AddScalar(usize),
    MulScalar(usize, f32),
    MatMul(usize, usize),
    Transpose(usize),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    ConcatCols(Vec<usize>),
    ConcatRows(Vec<usize>),
    Row(usize, usize),
    SliceCols {
        src: usize,
        start: usize,
        len: usize,
    },
    SumAll(usize),
    MeanAll(usize),
    ColSum(usize),
    RowSum(usize),
    ColMax(usize, Vec<usize>),
    ColLse(usize),
    LseAll(usize),
    LogSoftmaxRows(usize),
    SoftmaxRows(usize),
    Unfold {
        src: usize,
        k: usize,
    },
    GatherRows(usize, Vec<usize>),
    GatherSum(usize, Vec<(usize, usize)>),
    Reshape(usize),
}

impl Op {
    /// Parents of the node, for the needs-gradient sweep.
    fn parents(&self, out: &mut Vec<usize>) {
        out.clear();
        match self {
            Op::Leaf(_) => {}
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MatMul(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            Op::AddScalar(a)
            | Op::MulScalar(a, _)
            | Op::Transpose(a)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Relu(a)
            | Op::Row(a, _)
            | Op::SliceCols { src: a, .. }
            | Op::SumAll(a)
            | Op::MeanAll(a)
            | Op::ColSum(a)
            | Op::RowSum(a)
            | Op::ColMax(a, _)
            | Op::ColLse(a)
            | Op::LseAll(a)
            | Op::LogSoftmaxRows(a)
            | Op::SoftmaxRows(a)
            | Op::Unfold { src: a, .. }
            | Op::GatherRows(a, _)
            | Op::GatherSum(a, _)
            | Op::Reshape(a) => out.push(*a),
            Op::ConcatCols(v) | Op::ConcatRows(v) => out.extend_from_slice(v),
        }
    }
}

struct Node {
    op: Op,
    value: Arc<Array>,
}

/// A single-use reverse-mode autodiff tape.
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    bound_params: RefCell<HashMap<ParamId, Var>>,
    frozen_stores: RefCell<std::collections::HashSet<u64>>,
    mode: ExecMode,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

// Graphs are built and dropped once per forward pass — thousands of times
// per meta-iteration — so dropped tapes park their (cleared) node storage in
// a small thread-local free list and `Graph::new` reclaims it, capacity
// intact, instead of reallocating from 256 nodes every episode.
const NODE_POOL_KEEP: usize = 8;

thread_local! {
    static NODE_POOL: RefCell<Vec<Vec<Node>>> = const { RefCell::new(Vec::new()) };
}

fn recycled_nodes() -> Vec<Node> {
    NODE_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_else(|| Vec::with_capacity(256))
}

impl Drop for Graph {
    fn drop(&mut self) {
        let mut nodes = std::mem::take(self.nodes.get_mut());
        nodes.clear();
        NODE_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < NODE_POOL_KEEP {
                pool.push(nodes);
            }
        });
    }
}

impl Graph {
    /// Creates an empty tape in [`ExecMode::Train`] (dropout active).
    ///
    /// Tape storage is recycled from previously dropped graphs on the same
    /// thread, so steady-state training does not pay a per-episode
    /// reallocation of the node vector.
    pub fn new() -> Graph {
        Graph::with_mode(ExecMode::Train)
    }

    /// Creates an empty tape in [`ExecMode::Eval`] (dropout is identity).
    ///
    /// Gradients remain fully available — this is the executor for
    /// dropout-free adaptation losses (FEWNER's inner loop differentiates a
    /// deterministic support loss).
    pub fn eval() -> Graph {
        Graph::with_mode(ExecMode::Eval)
    }

    fn with_mode(mode: ExecMode) -> Graph {
        Graph {
            nodes: RefCell::new(recycled_nodes()),
            bound_params: RefCell::new(HashMap::new()),
            frozen_stores: RefCell::new(std::collections::HashSet::new()),
            mode,
        }
    }

    /// Whether dropout is active on this tape.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Node capacity currently reserved by the tape (diagnostics / tests).
    pub fn capacity(&self) -> usize {
        self.nodes.borrow().capacity()
    }

    fn push(&self, op: Op, value: Array) -> Var {
        self.push_shared(op, Arc::new(value))
    }

    fn push_shared(&self, op: Op, value: Arc<Array>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { op, value });
        Var(nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// The current value of a node (cheap `Arc` clone).
    pub fn value(&self, v: Var) -> Arc<Array> {
        Arc::clone(&self.nodes.borrow()[v.0].value)
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// Inserts a constant (no gradient will flow into it).
    pub fn constant(&self, value: Array) -> Var {
        self.push(Op::Leaf(None), value)
    }

    /// Inserts a 1×1 constant.
    pub fn scalar(&self, value: f32) -> Var {
        self.constant(Array::scalar(value))
    }

    /// Binds a parameter from a store; repeated binds return the same node
    /// so gradient contributions accumulate on one leaf. Parameters of a
    /// store frozen with [`Graph::freeze`] are bound as constants.
    pub fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.bound_params.borrow().get(&id) {
            return v;
        }
        let frozen = self.frozen_stores.borrow().contains(&id.store);
        let op = if frozen {
            Op::Leaf(None)
        } else {
            Op::Leaf(Some(id))
        };
        let v = self.push_shared(op, Arc::clone(store.value(id)));
        self.bound_params.borrow_mut().insert(id, v);
        v
    }

    /// Marks a store's parameters as frozen: subsequent binds via
    /// [`Graph::param`] become constants (no gradients computed — the cheap
    /// way to run a pre-trained encoder under a trainable head).
    pub fn freeze(&self, store: &ParamStore) {
        self.frozen_stores.borrow_mut().insert(store.id());
    }

    fn binary_shapes(&self, a: Var, b: Var) -> ((usize, usize), (usize, usize)) {
        let nodes = self.nodes.borrow();
        (nodes[a.0].value.shape(), nodes[b.0].value.shape())
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            kernels::bcast_zip(&nodes[a.0].value, &nodes[b.0].value, "add", |x, y| x + y)
        };
        self.push(Op::Add(a.0, b.0), value)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            kernels::bcast_zip(&nodes[a.0].value, &nodes[b.0].value, "sub", |x, y| x - y)
        };
        self.push(Op::Sub(a.0, b.0), value)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            kernels::bcast_zip(&nodes[a.0].value, &nodes[b.0].value, "mul", |x, y| x * y)
        };
        self.push(Op::Mul(a.0, b.0), value)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, a: Var, c: f32) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x + c);
        self.push(Op::AddScalar(a.0), value)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, a: Var, c: f32) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x * c);
        self.push(Op::MulScalar(a.0, c), value)
    }

    /// Negation.
    pub fn neg(&self, a: Var) -> Var {
        self.mul_scalar(a, -1.0)
    }

    /// `1 − a`, elementwise (GRU update gate complement).
    pub fn one_minus(&self, a: Var) -> Var {
        self.add_scalar(self.mul_scalar(a, -1.0), 1.0)
    }

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (sa, sb) = self.binary_shapes(a, b);
        assert_eq!(
            sa.1, sb.0,
            "matmul: [{}, {}] x [{}, {}]",
            sa.0, sa.1, sb.0, sb.1
        );
        let value = {
            let nodes = self.nodes.borrow();
            let mut out = Array::zeros(sa.0, sb.1);
            matmul_into(&nodes[a.0].value, &nodes[b.0].value, &mut out, true);
            out
        };
        self.push(Op::MatMul(a.0, b.0), value)
    }

    /// Transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.transpose();
        self.push(Op::Transpose(a.0), value)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0]
            .value
            .map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a.0), value)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(f32::tanh);
        self.push(Op::Tanh(a.0), value)
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let value = self.nodes.borrow()[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), value)
    }

    /// Concatenates along columns: `[r, c1] ++ [r, c2] … → [r, Σci]`.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero parts");
        let value = {
            let nodes = self.nodes.borrow();
            let rows = nodes[parts[0].0].value.rows();
            let total: usize = parts.iter().map(|p| nodes[p.0].value.cols()).sum();
            let mut out = Array::zeros(rows, total);
            let mut offset = 0;
            for p in parts {
                let a = &nodes[p.0].value;
                assert_eq!(a.rows(), rows, "concat_cols: row mismatch");
                for r in 0..rows {
                    out.row_mut(r)[offset..offset + a.cols()].copy_from_slice(a.row(r));
                }
                offset += a.cols();
            }
            out
        };
        self.push(Op::ConcatCols(parts.iter().map(|p| p.0).collect()), value)
    }

    /// Stacks along rows: `[r1, c] ++ [r2, c] … → [Σri, c]`.
    pub fn concat_rows(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero parts");
        let value = {
            let nodes = self.nodes.borrow();
            let cols = nodes[parts[0].0].value.cols();
            let total: usize = parts.iter().map(|p| nodes[p.0].value.rows()).sum();
            let mut out = Array::zeros(total, cols);
            let mut offset = 0;
            for p in parts {
                let a = &nodes[p.0].value;
                assert_eq!(a.cols(), cols, "concat_rows: col mismatch");
                for r in 0..a.rows() {
                    out.row_mut(offset + r).copy_from_slice(a.row(r));
                }
                offset += a.rows();
            }
            out
        };
        self.push(Op::ConcatRows(parts.iter().map(|p| p.0).collect()), value)
    }

    /// Extracts row `i` as a `[1, c]` node.
    pub fn row(&self, a: Var, i: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            assert!(i < src.rows(), "row {i} of {} rows", src.rows());
            Array::from_vec(1, src.cols(), src.row(i).to_vec())
        };
        self.push(Op::Row(a.0, i), value)
    }

    /// Extracts columns `start..start+len`.
    pub fn slice_cols(&self, a: Var, start: usize, len: usize) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            assert!(start + len <= src.cols(), "slice_cols out of range");
            let mut out = Array::zeros(src.rows(), len);
            for r in 0..src.rows() {
                out.row_mut(r)
                    .copy_from_slice(&src.row(r)[start..start + len]);
            }
            out
        };
        self.push(
            Op::SliceCols {
                src: a.0,
                start,
                len,
            },
            value,
        )
    }

    /// Sum of all elements → `[1, 1]`.
    pub fn sum_all(&self, a: Var) -> Var {
        let value = Array::scalar(self.nodes.borrow()[a.0].value.sum());
        self.push(Op::SumAll(a.0), value)
    }

    /// Mean of all elements → `[1, 1]`.
    pub fn mean_all(&self, a: Var) -> Var {
        let nodes_len = self.nodes.borrow()[a.0].value.len();
        let value = Array::scalar(self.nodes.borrow()[a.0].value.sum() / nodes_len as f32);
        self.push(Op::MeanAll(a.0), value)
    }

    /// Column sums: `[r, c] → [1, c]`.
    pub fn col_sum(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            let mut out = Array::zeros(1, src.cols());
            for r in 0..src.rows() {
                for (o, &v) in out.row_mut(0).iter_mut().zip(src.row(r)) {
                    *o += v;
                }
            }
            out
        };
        self.push(Op::ColSum(a.0), value)
    }

    /// Row sums: `[r, c] → [r, 1]`.
    pub fn row_sum(&self, a: Var) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            let mut out = Array::zeros(src.rows(), 1);
            for r in 0..src.rows() {
                *out.at_mut(r, 0) = src.row(r).iter().sum();
            }
            out
        };
        self.push(Op::RowSum(a.0), value)
    }

    /// Column-wise max: `[r, c] → [1, c]` (used for CNN max-over-time pooling).
    pub fn col_max(&self, a: Var) -> Var {
        let (value, arg) = kernels::max_cols(&self.nodes.borrow()[a.0].value);
        self.push(Op::ColMax(a.0, arg), value)
    }

    /// Column-wise log-sum-exp: `[r, c] → [1, c]` (CRF forward recursion).
    pub fn col_lse(&self, a: Var) -> Var {
        let value = kernels::logsumexp_cols(&self.nodes.borrow()[a.0].value);
        self.push(Op::ColLse(a.0), value)
    }

    /// Log-sum-exp over all elements → `[1, 1]` (CRF partition function).
    pub fn lse_all(&self, a: Var) -> Var {
        let value = Array::scalar(kernels::logsumexp_all(&self.nodes.borrow()[a.0].value));
        self.push(Op::LseAll(a.0), value)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self, a: Var) -> Var {
        let value = kernels::log_softmax_rows(&self.nodes.borrow()[a.0].value);
        self.push(Op::LogSoftmaxRows(a.0), value)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self, a: Var) -> Var {
        let value = kernels::softmax_rows(&self.nodes.borrow()[a.0].value);
        self.push(Op::SoftmaxRows(a.0), value)
    }

    /// Sliding-window unfold (im2col for 1-D convolution).
    pub fn unfold(&self, a: Var, k: usize) -> Var {
        let value = kernels::unfold(&self.nodes.borrow()[a.0].value, k);
        self.push(Op::Unfold { src: a.0, k }, value)
    }

    /// Gathers rows by index (embedding lookup): `[V, D] → [len(idx), D]`.
    pub fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            let mut out = Array::zeros(indices.len(), src.cols());
            for (r, &i) in indices.iter().enumerate() {
                assert!(i < src.rows(), "gather_rows: index {i} of {}", src.rows());
                out.row_mut(r).copy_from_slice(src.row(i));
            }
            out
        };
        self.push(Op::GatherRows(a.0, indices.to_vec()), value)
    }

    /// Reinterprets the (row-major) data as a `rows × cols` matrix.
    pub fn reshape(&self, a: Var, rows: usize, cols: usize) -> Var {
        let value = {
            let src = &self.nodes.borrow()[a.0].value;
            assert_eq!(
                src.len(),
                rows * cols,
                "reshape {:?} to [{rows}, {cols}]",
                src.shape()
            );
            Array::from_vec(rows, cols, src.data().to_vec())
        };
        self.push(Op::Reshape(a.0), value)
    }

    /// Sum of selected entries → `[1, 1]` (CRF gold-path scoring).
    pub fn gather_sum(&self, a: Var, coords: &[(usize, usize)]) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            let src = &nodes[a.0].value;
            let mut total = 0.0;
            for &(r, c) in coords {
                assert!(
                    r < src.rows() && c < src.cols(),
                    "gather_sum: ({r}, {c}) out of {:?}",
                    src.shape()
                );
                total += src.at(r, c);
            }
            Array::scalar(total)
        };
        self.push(Op::GatherSum(a.0, coords.to_vec()), value)
    }

    /// Inverted dropout. Identity unless the tape was built with
    /// [`Graph::new`] (train mode) and `rate > 0`.
    pub fn dropout(&self, a: Var, rate: f32, rng: &mut Rng) -> Var {
        Exec::dropout(self, a, rate, rng)
    }

    /// FiLM conditioning (paper Eq. 8): `γ ⊙ h + η` with `γ`, `η` `[1, D]`
    /// rows broadcast over `h`'s rows.
    pub fn film(&self, h: Var, gamma: Var, eta: Var) -> Var {
        self.add(self.mul(h, gamma), eta)
    }

    /// Mean over rows: `[r, c] → [1, c]` (prototype computation).
    pub fn row_mean(&self, a: Var) -> Var {
        let rows = self.shape(a).0;
        self.mul_scalar(self.col_sum(a), 1.0 / rows as f32)
    }

    /// Reverse sweep from `loss` (which must be `[1, 1]` and finite).
    ///
    /// Returns per-node gradients plus the bookkeeping needed to extract
    /// per-store parameter gradients.
    pub fn backward(&self, loss: Var) -> Result<Gradients> {
        let nodes = self.nodes.borrow();
        let loss_value = &nodes[loss.0].value;
        assert_eq!(loss_value.shape(), (1, 1), "backward from non-scalar loss");
        if !loss_value.all_finite() {
            return Err(Error::NonFinite {
                context: "loss before backward".to_string(),
            });
        }

        // Which nodes need gradients? A node needs one iff it is a parameter
        // leaf or any ancestor path reaches one. Constants and pure-input
        // subtrees are skipped entirely.
        let mut needs = vec![false; nodes.len()];
        let mut parents = Vec::with_capacity(4);
        for (i, node) in nodes.iter().enumerate() {
            match &node.op {
                Op::Leaf(Some(_)) => needs[i] = true,
                Op::Leaf(None) => {}
                op => {
                    op.parents(&mut parents);
                    needs[i] = parents.iter().any(|&p| needs[p]);
                }
            }
        }

        let mut grads: Vec<Option<Array>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Array::scalar(1.0));

        for i in (0..nodes.len()).rev() {
            if !needs[i] {
                continue;
            }
            let Some(grad) = grads[i].take() else {
                continue;
            };
            // Leaves keep their gradient for extraction.
            if matches!(nodes[i].op, Op::Leaf(_)) {
                grads[i] = Some(grad);
                continue;
            }
            self.backprop_op(&nodes, i, &grad, &needs, &mut grads);
            grads[i] = Some(grad);
        }

        Ok(Gradients {
            grads,
            bound: self.bound_params.borrow().clone(),
        })
    }

    /// Applies one op's vector-Jacobian product, accumulating into parents.
    #[allow(clippy::too_many_lines)]
    fn backprop_op(
        &self,
        nodes: &[Node],
        i: usize,
        grad: &Array,
        needs: &[bool],
        grads: &mut [Option<Array>],
    ) {
        let ensure = |grads: &mut [Option<Array>], idx: usize, shape: (usize, usize)| {
            if grads[idx].is_none() {
                grads[idx] = Some(Array::zeros(shape.0, shape.1));
            }
        };
        match &nodes[i].op {
            Op::Leaf(_) => {}
            Op::Add(a, b) => {
                for &p in &[*a, *b] {
                    if needs[p] {
                        ensure(grads, p, nodes[p].value.shape());
                        kernels::reduce_into(grad, grads[p].as_mut().unwrap());
                    }
                }
            }
            Op::Sub(a, b) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    kernels::reduce_into(grad, grads[*a].as_mut().unwrap());
                }
                if needs[*b] {
                    ensure(grads, *b, nodes[*b].value.shape());
                    let neg = grad.map(|x| -x);
                    kernels::reduce_into(&neg, grads[*b].as_mut().unwrap());
                }
            }
            Op::Mul(a, b) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    kernels::reduce_mul_into(grad, &nodes[*b].value, grads[*a].as_mut().unwrap());
                }
                if needs[*b] {
                    ensure(grads, *b, nodes[*b].value.shape());
                    kernels::reduce_mul_into(grad, &nodes[*a].value, grads[*b].as_mut().unwrap());
                }
            }
            Op::AddScalar(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    grads[*a].as_mut().unwrap().axpy(1.0, grad);
                }
            }
            Op::MulScalar(a, c) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    grads[*a].as_mut().unwrap().axpy(*c, grad);
                }
            }
            Op::MatMul(a, b) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    matmul_a_bt(grad, &nodes[*b].value, grads[*a].as_mut().unwrap());
                }
                if needs[*b] {
                    ensure(grads, *b, nodes[*b].value.shape());
                    matmul_at_b(&nodes[*a].value, grad, grads[*b].as_mut().unwrap());
                }
            }
            Op::Transpose(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    grads[*a].as_mut().unwrap().axpy(1.0, &grad.transpose());
                }
            }
            Op::Sigmoid(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let y = &nodes[i].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for ((g, &yv), o) in grad.data().iter().zip(y.data()).zip(ga.data_mut()) {
                        *o += g * yv * (1.0 - yv);
                    }
                }
            }
            Op::Tanh(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let y = &nodes[i].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for ((g, &yv), o) in grad.data().iter().zip(y.data()).zip(ga.data_mut()) {
                        *o += g * (1.0 - yv * yv);
                    }
                }
            }
            Op::Relu(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let x = &nodes[*a].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for ((g, &xv), o) in grad.data().iter().zip(x.data()).zip(ga.data_mut()) {
                        if xv > 0.0 {
                            *o += g;
                        }
                    }
                }
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let cols = nodes[p].value.cols();
                    if needs[p] {
                        ensure(grads, p, nodes[p].value.shape());
                        let gp = grads[p].as_mut().unwrap();
                        for r in 0..grad.rows() {
                            for (o, &g) in gp
                                .row_mut(r)
                                .iter_mut()
                                .zip(&grad.row(r)[offset..offset + cols])
                            {
                                *o += g;
                            }
                        }
                    }
                    offset += cols;
                }
            }
            Op::ConcatRows(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let rows = nodes[p].value.rows();
                    if needs[p] {
                        ensure(grads, p, nodes[p].value.shape());
                        let gp = grads[p].as_mut().unwrap();
                        for r in 0..rows {
                            for (o, &g) in gp.row_mut(r).iter_mut().zip(grad.row(offset + r)) {
                                *o += g;
                            }
                        }
                    }
                    offset += rows;
                }
            }
            Op::Row(a, r) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for (o, &g) in ga.row_mut(*r).iter_mut().zip(grad.row(0)) {
                        *o += g;
                    }
                }
            }
            Op::SliceCols { src, start, len } => {
                if needs[*src] {
                    ensure(grads, *src, nodes[*src].value.shape());
                    let gs = grads[*src].as_mut().unwrap();
                    for r in 0..grad.rows() {
                        for (o, &g) in gs.row_mut(r)[*start..*start + *len]
                            .iter_mut()
                            .zip(grad.row(r))
                        {
                            *o += g;
                        }
                    }
                }
            }
            Op::SumAll(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let g = grad.scalar_value();
                    for o in grads[*a].as_mut().unwrap().data_mut() {
                        *o += g;
                    }
                }
            }
            Op::MeanAll(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let n = nodes[*a].value.len() as f32;
                    let g = grad.scalar_value() / n;
                    for o in grads[*a].as_mut().unwrap().data_mut() {
                        *o += g;
                    }
                }
            }
            Op::ColSum(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for r in 0..ga.rows() {
                        for (o, &g) in ga.row_mut(r).iter_mut().zip(grad.row(0)) {
                            *o += g;
                        }
                    }
                }
            }
            Op::RowSum(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for r in 0..ga.rows() {
                        let g = grad.at(r, 0);
                        for o in ga.row_mut(r) {
                            *o += g;
                        }
                    }
                }
            }
            Op::ColMax(a, arg) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for (j, &src_row) in arg.iter().enumerate() {
                        *ga.at_mut(src_row, j) += grad.at(0, j);
                    }
                }
            }
            Op::ColLse(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let x = &nodes[*a].value;
                    let y = &nodes[i].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for r in 0..x.rows() {
                        for j in 0..x.cols() {
                            let w = (x.at(r, j) - y.at(0, j)).exp();
                            *ga.at_mut(r, j) += grad.at(0, j) * w;
                        }
                    }
                }
            }
            Op::LseAll(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let x = &nodes[*a].value;
                    let y = nodes[i].value.scalar_value();
                    let g = grad.scalar_value();
                    let ga = grads[*a].as_mut().unwrap();
                    for (o, &xv) in ga.data_mut().iter_mut().zip(x.data()) {
                        *o += g * (xv - y).exp();
                    }
                }
            }
            Op::LogSoftmaxRows(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let y = &nodes[i].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for r in 0..y.rows() {
                        let gsum: f32 = grad.row(r).iter().sum();
                        for (j, o) in ga.row_mut(r).iter_mut().enumerate() {
                            *o += grad.at(r, j) - y.at(r, j).exp() * gsum;
                        }
                    }
                }
            }
            Op::SoftmaxRows(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let y = &nodes[i].value;
                    let ga = grads[*a].as_mut().unwrap();
                    for r in 0..y.rows() {
                        let dot: f32 = grad
                            .row(r)
                            .iter()
                            .zip(y.row(r))
                            .map(|(&g, &yv)| g * yv)
                            .sum();
                        for (j, o) in ga.row_mut(r).iter_mut().enumerate() {
                            *o += y.at(r, j) * (grad.at(r, j) - dot);
                        }
                    }
                }
            }
            Op::Unfold { src, k } => {
                if needs[*src] {
                    ensure(grads, *src, nodes[*src].value.shape());
                    kernels::unfold_backward(
                        grad,
                        *k,
                        nodes[*src].value.shape(),
                        grads[*src].as_mut().unwrap(),
                    );
                }
            }
            Op::GatherRows(a, indices) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for (r, &idx) in indices.iter().enumerate() {
                        for (o, &g) in ga.row_mut(idx).iter_mut().zip(grad.row(r)) {
                            *o += g;
                        }
                    }
                }
            }
            Op::Reshape(a) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let ga = grads[*a].as_mut().unwrap();
                    for (o, &g) in ga.data_mut().iter_mut().zip(grad.data()) {
                        *o += g;
                    }
                }
            }
            Op::GatherSum(a, coords) => {
                if needs[*a] {
                    ensure(grads, *a, nodes[*a].value.shape());
                    let g = grad.scalar_value();
                    let ga = grads[*a].as_mut().unwrap();
                    for &(r, c) in coords {
                        *ga.at_mut(r, c) += g;
                    }
                }
            }
        }
    }
}

/// The tape is one of the two executors behind the shared [`Exec`] op
/// vocabulary (the other is the gradient-free [`crate::Infer`] arena): every
/// trait method delegates to the inherent builder of the same name, so
/// generic model code instantiated with `Graph` records exactly the tape it
/// always did.
impl Exec for Graph {
    fn constant(&self, value: Array) -> Var {
        Graph::constant(self, value)
    }

    fn param(&self, store: &ParamStore, id: ParamId) -> Var {
        Graph::param(self, store, id)
    }

    fn freeze(&self, store: &ParamStore) {
        Graph::freeze(self, store)
    }

    fn value(&self, v: Var) -> Arc<Array> {
        Graph::value(self, v)
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        Graph::shape(self, v)
    }

    fn mode(&self) -> ExecMode {
        Graph::mode(self)
    }

    fn add(&self, a: Var, b: Var) -> Var {
        Graph::add(self, a, b)
    }

    fn sub(&self, a: Var, b: Var) -> Var {
        Graph::sub(self, a, b)
    }

    fn mul(&self, a: Var, b: Var) -> Var {
        Graph::mul(self, a, b)
    }

    fn add_scalar(&self, a: Var, c: f32) -> Var {
        Graph::add_scalar(self, a, c)
    }

    fn mul_scalar(&self, a: Var, c: f32) -> Var {
        Graph::mul_scalar(self, a, c)
    }

    fn matmul(&self, a: Var, b: Var) -> Var {
        Graph::matmul(self, a, b)
    }

    fn transpose(&self, a: Var) -> Var {
        Graph::transpose(self, a)
    }

    fn sigmoid(&self, a: Var) -> Var {
        Graph::sigmoid(self, a)
    }

    fn tanh(&self, a: Var) -> Var {
        Graph::tanh(self, a)
    }

    fn relu(&self, a: Var) -> Var {
        Graph::relu(self, a)
    }

    fn concat_cols(&self, parts: &[Var]) -> Var {
        Graph::concat_cols(self, parts)
    }

    fn concat_rows(&self, parts: &[Var]) -> Var {
        Graph::concat_rows(self, parts)
    }

    fn row(&self, a: Var, i: usize) -> Var {
        Graph::row(self, a, i)
    }

    fn slice_cols(&self, a: Var, start: usize, len: usize) -> Var {
        Graph::slice_cols(self, a, start, len)
    }

    fn sum_all(&self, a: Var) -> Var {
        Graph::sum_all(self, a)
    }

    fn mean_all(&self, a: Var) -> Var {
        Graph::mean_all(self, a)
    }

    fn col_sum(&self, a: Var) -> Var {
        Graph::col_sum(self, a)
    }

    fn row_sum(&self, a: Var) -> Var {
        Graph::row_sum(self, a)
    }

    fn col_max(&self, a: Var) -> Var {
        Graph::col_max(self, a)
    }

    fn col_lse(&self, a: Var) -> Var {
        Graph::col_lse(self, a)
    }

    fn lse_all(&self, a: Var) -> Var {
        Graph::lse_all(self, a)
    }

    fn log_softmax_rows(&self, a: Var) -> Var {
        Graph::log_softmax_rows(self, a)
    }

    fn softmax_rows(&self, a: Var) -> Var {
        Graph::softmax_rows(self, a)
    }

    fn unfold(&self, a: Var, k: usize) -> Var {
        Graph::unfold(self, a, k)
    }

    fn gather_rows(&self, a: Var, indices: &[usize]) -> Var {
        Graph::gather_rows(self, a, indices)
    }

    fn reshape(&self, a: Var, rows: usize, cols: usize) -> Var {
        Graph::reshape(self, a, rows, cols)
    }

    fn gather_sum(&self, a: Var, coords: &[(usize, usize)]) -> Var {
        Graph::gather_sum(self, a, coords)
    }

    fn scalar(&self, value: f32) -> Var {
        Graph::scalar(self, value)
    }

    fn neg(&self, a: Var) -> Var {
        Graph::neg(self, a)
    }

    fn one_minus(&self, a: Var) -> Var {
        Graph::one_minus(self, a)
    }

    fn film(&self, h: Var, gamma: Var, eta: Var) -> Var {
        Graph::film(self, h, gamma, eta)
    }

    fn row_mean(&self, a: Var) -> Var {
        Graph::row_mean(self, a)
    }
}

/// The result of a backward sweep.
pub struct Gradients {
    grads: Vec<Option<Array>>,
    bound: HashMap<ParamId, Var>,
}

impl Gradients {
    /// Gradient of the loss with respect to a node, if it was computed.
    pub fn wrt(&self, v: Var) -> Option<&Array> {
        self.grads[v.0].as_ref()
    }

    /// Extracts the gradients belonging to one parameter store.
    pub fn for_store(&self, store: &ParamStore) -> ParamGrads {
        let mut out = ParamGrads::new_raw(store.id(), store.len());
        for (id, var) in &self.bound {
            if id.store == store.id() {
                if let Some(g) = &self.grads[var.0] {
                    out.accumulate(id.index, g);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(name: &str, arr: Array) -> (ParamStore, ParamId) {
        let mut s = ParamStore::new();
        let id = s.add(name, arr);
        (s, id)
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = sum((w * 3) + 1) for w = [1, 2]; dloss/dw = [3, 3].
        let (store, id) = store_with("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        let g = Graph::new();
        let w = g.param(&store, id);
        let loss = g.sum_all(g.add_scalar(g.mul_scalar(w, 3.0), 1.0));
        assert_eq!(g.value(loss).scalar_value(), 11.0);
        let grads = g.backward(loss).unwrap();
        let pg = grads.for_store(&store);
        assert_eq!(pg.get(id).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn matmul_gradient_matches_hand_derivation() {
        // loss = sum(a @ b). dA = 1 @ B^T, dB = A^T @ 1.
        let (mut store, ida) = store_with("a", Array::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let idb = store.add("b", Array::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]));
        let g = Graph::new();
        let a = g.param(&store, ida);
        let b = g.param(&store, idb);
        let loss = g.sum_all(g.matmul(a, b));
        let grads = g.backward(loss).unwrap();
        let pg = grads.for_store(&store);
        assert_eq!(pg.get(ida).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(pg.get(idb).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn reused_parameter_accumulates() {
        // loss = sum(w) + sum(w * w): dw = 1 + 2w.
        let (store, id) = store_with("w", Array::from_vec(1, 2, vec![2.0, -3.0]));
        let g = Graph::new();
        let w1 = g.param(&store, id);
        let w2 = g.param(&store, id);
        assert_eq!(w1, w2, "param binding is cached");
        let loss = g.add(g.sum_all(w1), g.sum_all(g.mul(w1, w1)));
        let grads = g.backward(loss).unwrap();
        let pg = grads.for_store(&store);
        assert_eq!(pg.get(id).unwrap().data(), &[5.0, -5.0]);
    }

    #[test]
    fn constants_receive_no_gradient() {
        let (store, id) = store_with("w", Array::scalar(2.0));
        let g = Graph::new();
        let w = g.param(&store, id);
        let c = g.constant(Array::scalar(10.0));
        let loss = g.sum_all(g.mul(w, c));
        let grads = g.backward(loss).unwrap();
        assert!(grads.wrt(c).is_none());
        assert_eq!(
            grads.for_store(&store).get(id).unwrap().scalar_value(),
            10.0
        );
    }

    #[test]
    fn two_stores_route_separately() {
        let (theta_store, wt) = store_with("theta", Array::scalar(3.0));
        let (phi_store, wp) = store_with("phi", Array::scalar(5.0));
        let g = Graph::new();
        let t = g.param(&theta_store, wt);
        let p = g.param(&phi_store, wp);
        let loss = g.sum_all(g.mul(t, p)); // d/dt = 5, d/dp = 3
        let grads = g.backward(loss).unwrap();
        assert_eq!(
            grads
                .for_store(&theta_store)
                .get(wt)
                .unwrap()
                .scalar_value(),
            5.0
        );
        assert_eq!(
            grads.for_store(&phi_store).get(wp).unwrap().scalar_value(),
            3.0
        );
    }

    #[test]
    fn non_finite_loss_is_an_error() {
        let (store, id) = store_with("w", Array::scalar(0.0));
        let g = Graph::new();
        let w = g.param(&store, id);
        let bad = g.mul(w, g.constant(Array::scalar(f32::NAN)));
        let loss = g.sum_all(bad);
        assert!(matches!(g.backward(loss), Err(Error::NonFinite { .. })));
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let (store, id) = store_with("emb", Array::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let g = Graph::new();
        let emb = g.param(&store, id);
        let x = g.gather_rows(emb, &[2, 0, 2]);
        assert_eq!(g.value(x).data(), &[5., 6., 1., 2., 5., 6.]);
        let loss = g.sum_all(x);
        let grads = g.backward(loss).unwrap();
        let pg = grads.for_store(&store);
        // Row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(pg.get(id).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let g = Graph::eval();
        let mut rng = Rng::new(3);
        let x = g.constant(Array::from_vec(1, 4, vec![1., 2., 3., 4.]));
        let y = g.dropout(x, 0.5, &mut rng);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_train_mode_preserves_expectation() {
        let (store, id) = store_with("w", Array::full(1, 1000, 1.0));
        let mut rng = Rng::new(4);
        let g = Graph::new();
        assert_eq!(g.mode(), ExecMode::Train);
        let w = g.param(&store, id);
        let y = g.dropout(w, 0.3, &mut rng);
        let mean = g.value(y).sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.1, "inverted dropout mean {mean}");
    }

    #[test]
    fn eval_mode_tape_still_computes_gradients() {
        let (store, id) = store_with("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        let g = Graph::eval();
        let w = g.param(&store, id);
        let loss = g.sum_all(g.mul_scalar(w, 3.0));
        let grads = g.backward(loss).unwrap().for_store(&store);
        assert_eq!(grads.get(id).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn dropped_tapes_donate_their_capacity() {
        let cap = {
            let g = Graph::new();
            for _ in 0..600 {
                g.constant(Array::scalar(1.0));
            }
            g.capacity()
        };
        assert!(cap >= 600);
        // The next tape on this thread starts from the recycled storage.
        let g = Graph::new();
        assert!(
            g.capacity() >= cap,
            "fresh tape capacity {} below recycled {cap}",
            g.capacity()
        );
        assert!(g.is_empty(), "recycled tape must start empty");
    }
}
