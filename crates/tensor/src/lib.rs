//! `fewner-tensor` — a from-scratch tensor and reverse-mode autodiff engine.
//!
//! This crate is the computational substrate of the FEWNER reproduction: the
//! original system is built on PyTorch, which we replace with a small,
//! auditable define-by-run tape over dense 2-D `f32` arrays. It provides
//! everything the paper's models need and nothing more:
//!
//! * [`Array`] — dense row-major matrices with the handful of BLAS-like
//!   kernels the models are hot on ([`mod@array`]).
//! * [`Exec`] — the executor trait: the op vocabulary models are written
//!   against once, evaluated by two interchangeable executors whose forward
//!   values are bitwise identical ([`exec`]).
//! * [`Graph`]/[`Var`] — the tape executor: an eager autodiff tape with
//!   broadcasting elementwise ops, matmul, gather/scatter, stable log-space
//!   reductions (the CRF's forward recursion differentiates through
//!   [`Graph::col_lse`]), unfold/max-pool for the character CNN, dropout and
//!   FiLM conditioning ([`graph`]).
//! * [`Infer`] — the gradient-free executor: the same ops evaluated into a
//!   reusable scratch-buffer arena with no tape and no gradient surface,
//!   for the post-adaptation query sweep and serving ([`infer`]).
//! * [`KernelBackend`] — selects between the scalar oracle kernels and
//!   blocked/vectorized rewrites for the inference path; the tape always
//!   runs scalar, and the blocked forward kernels are bitwise identical
//!   by construction ([`backend`]).
//! * [`ParamStore`]/[`ParamGrads`] — named parameter stores. FEWNER's split
//!   between task-independent θ and task-specific φ is expressed as two
//!   stores bound into the same graph, with gradients routed per store
//!   ([`params`]).
//! * [`nn`] — generic layers: [`nn::Linear`], [`nn::Embedding`],
//!   [`nn::GruCell`], [`nn::BiGru`], [`nn::Conv1d`].
//! * [`optim`] — [`optim::Sgd`] (inner loop) and [`optim::Adam`] (outer
//!   loop) with global-norm clipping and decoupled weight decay.
//!
//! # Example
//!
//! ```
//! use fewner_tensor::{Array, Graph, ParamStore};
//! use fewner_util::Rng;
//!
//! let mut rng = Rng::new(0);
//! let mut params = ParamStore::new();
//! let w = params.add("w", Array::uniform(3, 1, -1.0, 1.0, &mut rng));
//!
//! let g = Graph::new();
//! let x = g.constant(Array::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
//! let y = g.matmul(x, g.param(&params, w));
//! let loss = g.mean_all(g.mul(y, y));
//! let grads = g.backward(loss).unwrap().for_store(&params);
//! assert!(grads.get(w).is_some());
//! ```

#![warn(missing_docs)]

pub mod array;
pub mod backend;
pub mod exec;
pub mod graph;
pub mod infer;
pub mod kernels;
pub mod nn;
pub mod optim;
pub mod params;

pub use array::Array;
pub use backend::KernelBackend;
pub use exec::{Exec, ExecMode, Var};
pub use graph::{Gradients, Graph};
pub use infer::{global_stats as infer_global_stats, Infer, InferStats};
pub use optim::{Adam, SavedAdam, SavedSgd, Sgd};
pub use params::{
    f16_bits_to_f32, f32_to_f16_bits, ParamGrads, ParamId, ParamStore, QuantArray, QuantizedParams,
    SavedParams, WeightFormat,
};
