//! Kernel backend selection: the scalar oracle vs. blocked fast kernels.
//!
//! [`KernelBackend`] names the two implementations of every hot kernel:
//!
//! * [`KernelBackend::Scalar`] — the reference loops in [`crate::kernels`]
//!   and [`crate::array`]. The recording [`crate::Graph`] is hardwired to
//!   these so tape semantics (and every training checkpoint byte) are
//!   untouched by backend selection.
//! * [`KernelBackend::Blocked`] — cache-blocked, k-unrolled, lane-chunked
//!   rewrites. No `unsafe`: the lanes are `chunks_exact` slices the
//!   compiler auto-vectorises.
//!
//! The contract, enforced by `crates/tensor/tests/kernel_props.rs`, is that
//! every kernel dispatched through this enum is **bitwise identical**
//! across backends, with one documented exception: [`KernelBackend::
//! matmul_a_bt`] reduces its dot products over eight partial lanes, which
//! reassociates the sum and is therefore only ULP-bounded. That kernel is
//! used exclusively by the tape's backward pass — which always runs
//! `Scalar` — so the bitwise guarantees of training, serving and φ
//! persistence are unaffected.
//!
//! Bitwise equality of the blocked kernels is by construction, not by
//! tolerance: every floating-point operation is performed in the same
//! order with the same bracketing as the scalar loop. A k-unrolled matmul
//! step accumulates `((o + a₀b₀) + a₁b₁) + …` left-associated, which is
//! exactly the scalar kernel's sequence of `+=`s; the scalar kernel's
//! zero-skip (`a[i][k] == 0.0` contributes nothing rather than `+= 0.0·b`,
//! which differs for `-0.0` outputs) is preserved by falling back to the
//! per-k loop whenever an unrolled group contains a zero.

use std::sync::OnceLock;

use crate::array::{matmul_a_bt, matmul_at_b, matmul_into, Array};
use crate::kernels;

/// Which implementation of the hot kernels to run. See the [module
/// docs](self) for the equivalence contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelBackend {
    /// The reference scalar loops — the oracle the property suite trusts.
    Scalar,
    /// Blocked/vectorized rewrites, bitwise-equal on the inference path.
    #[default]
    Blocked,
}

impl std::str::FromStr for KernelBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<KernelBackend, String> {
        match s {
            "scalar" => Ok(KernelBackend::Scalar),
            "blocked" => Ok(KernelBackend::Blocked),
            other => Err(format!("unknown kernel backend `{other}`")),
        }
    }
}

static ENV_BACKEND: OnceLock<KernelBackend> = OnceLock::new();

impl KernelBackend {
    /// The backend's CLI/env name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Blocked => "blocked",
        }
    }

    /// The process-wide default backend: `FEWNER_KERNELS=scalar|blocked`,
    /// falling back to [`KernelBackend::Blocked`]. Read once and cached; an
    /// unrecognised value warns on stderr rather than silently changing
    /// numerics. This is what `Infer::new()` uses, and what the CI kernel
    /// matrix flips to run every equivalence suite under both backends.
    pub fn from_env() -> KernelBackend {
        *ENV_BACKEND.get_or_init(|| match std::env::var("FEWNER_KERNELS") {
            Ok(v) => v.parse().unwrap_or_else(|e: String| {
                eprintln!("FEWNER_KERNELS: {e}; using `blocked`");
                KernelBackend::Blocked
            }),
            Err(_) => KernelBackend::Blocked,
        })
    }

    /// `out += a · b` (`out = a · b` when `accumulate` is false). Bitwise
    /// across backends.
    pub fn matmul_into(&self, a: &Array, b: &Array, out: &mut Array, accumulate: bool) {
        match self {
            KernelBackend::Scalar => matmul_into(a, b, out, accumulate),
            KernelBackend::Blocked => matmul_into_blocked(a, b, out, accumulate),
        }
    }

    /// `out += aᵀ · b` without materialising the transpose. Bitwise across
    /// backends.
    pub fn matmul_at_b(&self, a: &Array, b: &Array, out: &mut Array) {
        match self {
            KernelBackend::Scalar => matmul_at_b(a, b, out),
            KernelBackend::Blocked => matmul_at_b_blocked(a, b, out),
        }
    }

    /// `out += a · bᵀ` without materialising the transpose.
    ///
    /// The one ULP-bounded kernel: the blocked variant reduces each dot
    /// product over eight partial lanes with a fixed reduction tree, which
    /// reassociates the k-sum relative to the scalar single-accumulator
    /// loop. Only the tape's backward pass calls this, and the tape is
    /// pinned to `Scalar`.
    pub fn matmul_a_bt(&self, a: &Array, b: &Array, out: &mut Array) {
        match self {
            KernelBackend::Scalar => matmul_a_bt(a, b, out),
            KernelBackend::Blocked => matmul_a_bt_blocked(a, b, out),
        }
    }

    /// Broadcasting elementwise binary op. Bitwise across backends (the
    /// blocked variant only specialises the broadcast-shape dispatch; each
    /// element sees the same single application of `f`).
    pub fn bcast_zip_into(
        &self,
        a: &Array,
        b: &Array,
        out: &mut Array,
        f: impl Fn(f32, f32) -> f32,
    ) {
        match self {
            KernelBackend::Scalar => kernels::bcast_zip_into(a, b, out, f),
            KernelBackend::Blocked => bcast_zip_into_blocked(a, b, out, f),
        }
    }

    /// Sums a broadcast-shaped gradient back into `into`. Bitwise across
    /// backends (identical per-cell accumulation order).
    pub fn reduce_into(&self, grad: &Array, into: &mut Array) {
        match self {
            KernelBackend::Scalar => kernels::reduce_into(grad, into),
            KernelBackend::Blocked => reduce_into_blocked(grad, into),
        }
    }

    /// Column-wise log-sum-exp `[r, c] → [1, c]`. Bitwise across backends:
    /// the blocked variant streams row-major but accumulates each column's
    /// max and sum in the same ascending-row order as the scalar loop.
    pub fn logsumexp_cols(&self, a: &Array) -> Array {
        match self {
            KernelBackend::Scalar => kernels::logsumexp_cols(a),
            KernelBackend::Blocked => logsumexp_cols_blocked(a),
        }
    }

    /// Row-wise log-softmax. Bitwise across backends (the kernel is
    /// exp-bound; the blocked variant fuses the output pass).
    pub fn log_softmax_rows(&self, a: &Array) -> Array {
        match self {
            KernelBackend::Scalar => kernels::log_softmax_rows(a),
            KernelBackend::Blocked => log_softmax_rows_blocked(a),
        }
    }

    /// Row-wise softmax. Bitwise across backends.
    pub fn softmax_rows(&self, a: &Array) -> Array {
        match self {
            KernelBackend::Scalar => kernels::softmax_rows(a),
            KernelBackend::Blocked => {
                let mut out = log_softmax_rows_blocked(a);
                for v in out.data_mut() {
                    *v = v.exp();
                }
                out
            }
        }
    }

    /// Column-wise max with first-max-wins argmax. Bitwise across backends,
    /// including tie-breaking: both traversals compare strictly (`>`) in
    /// ascending-row order, so the earliest row wins every tie.
    pub fn max_cols(&self, a: &Array) -> (Array, Vec<usize>) {
        match self {
            KernelBackend::Scalar => kernels::max_cols(a),
            KernelBackend::Blocked => max_cols_blocked(a),
        }
    }

    /// CRF forward lattice (see [`kernels::crf_forward_lattice`]). Bitwise
    /// across backends.
    pub fn crf_forward_lattice(&self, emissions: &Array, trans: &Array, start: &Array) -> Array {
        match self {
            KernelBackend::Scalar => kernels::crf_forward_lattice(emissions, trans, start),
            KernelBackend::Blocked => crf_forward_lattice_blocked(emissions, trans, start),
        }
    }

    /// CRF backward lattice (see [`kernels::crf_backward_lattice`]).
    /// Bitwise across backends.
    pub fn crf_backward_lattice(&self, emissions: &Array, trans: &Array) -> Array {
        match self {
            KernelBackend::Scalar => kernels::crf_backward_lattice(emissions, trans),
            KernelBackend::Blocked => crf_backward_lattice_blocked(emissions, trans),
        }
    }
}

/// Output tile width for the blocked matmuls: the slice of `out` a k-group
/// updates stays resident in L1 across the unrolled loop.
const J_TILE: usize = 128;

/// One k-group of ≤ 8 coefficients against one output tile, honouring the
/// scalar kernel's zero-skip (a skipped k contributes *nothing*, which is
/// not the same as `+= 0.0 * b` when the running value is `-0.0`).
fn mac_tile_skip(ot: &mut [f32], q: &[f32], bd: &[f32], k: usize, n: usize, j0: usize) {
    let len = ot.len();
    for (dk, &aik) in q.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let br = &bd[(k + dk) * n + j0..][..len];
        for (o, &bv) in ot.iter_mut().zip(br) {
            *o += aik * bv;
        }
    }
}

/// One zero-free k-group of exactly 8 coefficients against one output
/// tile. Left-associated: identical bracketing to eight successive scalar
/// `+=` passes over ascending k, so the result is bitwise-equal to the
/// scalar loop. Every operand is pre-sliced to `len` so the inner loop is
/// provably in-bounds and vectorises.
#[allow(clippy::needless_range_loop)]
fn mac_tile8(ot: &mut [f32], q: &[f32], bd: &[f32], k: usize, n: usize, j0: usize) {
    let len = ot.len();
    let (a0, a1, a2, a3) = (q[0], q[1], q[2], q[3]);
    let (a4, a5, a6, a7) = (q[4], q[5], q[6], q[7]);
    let b0 = &bd[k * n + j0..][..len];
    let b1 = &bd[(k + 1) * n + j0..][..len];
    let b2 = &bd[(k + 2) * n + j0..][..len];
    let b3 = &bd[(k + 3) * n + j0..][..len];
    let b4 = &bd[(k + 4) * n + j0..][..len];
    let b5 = &bd[(k + 5) * n + j0..][..len];
    let b6 = &bd[(k + 6) * n + j0..][..len];
    let b7 = &bd[(k + 7) * n + j0..][..len];
    for j in 0..len {
        ot[j] = (((((((ot[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j])
            + a4 * b4[j])
            + a5 * b5[j])
            + a6 * b6[j])
            + a7 * b7[j];
    }
}

/// A zero-free k-group of exactly **4** coefficients fused over two output
/// rows. The two accumulation chains are independent, which doubles the
/// instruction-level parallelism the out-of-order core can extract from
/// the dependent-add chain, and the four b-rows are loaded once for both.
/// The group is 4 wide (not 8) so the working set — 8 coefficient splats,
/// 4 b vectors, 2 accumulators — fits the 16 AVX registers without
/// spilling. Grouping width does not affect the math: each row's k-chain
/// is one left-associated sequence of `+=`s regardless of how it is cut,
/// so the result stays bitwise-equal to the scalar loop.
#[inline(always)]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn mac_tile4_x2(
    ot0: &mut [f32],
    ot1: &mut [f32],
    q0: &[f32],
    q1: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
    j0: usize,
) {
    let len = ot0.len();
    let ot1 = &mut ot1[..len];
    let (a00, a01, a02, a03) = (q0[0], q0[1], q0[2], q0[3]);
    let (a10, a11, a12, a13) = (q1[0], q1[1], q1[2], q1[3]);
    let b0 = &bd[k * n + j0..][..len];
    let b1 = &bd[(k + 1) * n + j0..][..len];
    let b2 = &bd[(k + 2) * n + j0..][..len];
    let b3 = &bd[(k + 3) * n + j0..][..len];
    for j in 0..len {
        ot0[j] = (((ot0[j] + a00 * b0[j]) + a01 * b1[j]) + a02 * b2[j]) + a03 * b3[j];
        ot1[j] = (((ot1[j] + a10 * b0[j]) + a11 * b1[j]) + a12 * b2[j]) + a13 * b3[j];
    }
}

fn matmul_into_blocked(a: &Array, b: &Array, out: &mut Array, accumulate: bool) {
    debug_assert_eq!(a.cols(), b.rows());
    debug_assert_eq!(out.shape(), (a.rows(), b.cols()));
    if !accumulate {
        out.fill_zero();
    }
    let n = b.cols();
    let bd = b.data();
    let rows = a.rows();
    let od = out.data_mut();
    // Row pairs share the streamed b-rows and interleave two independent
    // accumulation chains; each row's own f32 sequence is untouched.
    let mut i = 0;
    while i + 2 <= rows {
        let (row0, row1) = od[i * n..(i + 2) * n].split_at_mut(n);
        let (ar0, ar1) = (a.row(i), a.row(i + 1));
        let dense_pair = !ar0.iter().chain(ar1).any(|&v| v == 0.0);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + J_TILE).min(n);
            let ot0 = &mut row0[j0..j1];
            let ot1 = &mut row1[j0..j1];
            let mut c0 = ar0.chunks_exact(4);
            let mut c1 = ar1.chunks_exact(4);
            let mut k = 0;
            if dense_pair {
                // No zero anywhere in either a-row (the common case for
                // trained dense weights): the per-group zero test is dead,
                // so run the fused tile back-to-back.
                for (q0, q1) in c0.by_ref().zip(c1.by_ref()) {
                    mac_tile4_x2(ot0, ot1, q0, q1, bd, k, n, j0);
                    k += 4;
                }
            } else {
                for (q0, q1) in c0.by_ref().zip(c1.by_ref()) {
                    if q0.iter().chain(q1).any(|&v| v == 0.0) {
                        // The per-k skip loop preserves the zero-skip exactly.
                        mac_tile_skip(ot0, q0, bd, k, n, j0);
                        mac_tile_skip(ot1, q1, bd, k, n, j0);
                    } else {
                        mac_tile4_x2(ot0, ot1, q0, q1, bd, k, n, j0);
                    }
                    k += 4;
                }
            }
            mac_tile_skip(ot0, c0.remainder(), bd, k, n, j0);
            mac_tile_skip(ot1, c1.remainder(), bd, k, n, j0);
            j0 = j1;
        }
        i += 2;
    }
    if i < rows {
        let a_row = a.row(i);
        let out_row = &mut od[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + J_TILE).min(n);
            let ot = &mut out_row[j0..j1];
            let mut chunks = a_row.chunks_exact(8);
            let mut k = 0;
            for q in chunks.by_ref() {
                // `contains` compares with `==`, so `-0.0` also hits the
                // skip path — same predicate as the scalar kernel's.
                if q.contains(&0.0) {
                    mac_tile_skip(ot, q, bd, k, n, j0);
                } else {
                    mac_tile8(ot, q, bd, k, n, j0);
                }
                k += 8;
            }
            mac_tile_skip(ot, chunks.remainder(), bd, k, n, j0);
            j0 = j1;
        }
    }
}

#[allow(clippy::needless_range_loop)]
fn matmul_at_b_blocked(a: &Array, b: &Array, out: &mut Array) {
    debug_assert_eq!(a.rows(), b.rows());
    debug_assert_eq!(out.shape(), (a.cols(), b.cols()));
    let n = b.cols();
    let m = a.cols();
    let rr = a.rows();
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    // The scalar kernel loops r-outer, so each out element accumulates in
    // ascending-r order; this loop is i-outer with r unrolled by 4, which
    // touches each element in the same ascending-r order — bitwise equal.
    for i in 0..m {
        let out_row = &mut od[i * n..(i + 1) * n];
        let mut r = 0;
        while r + 4 <= rr {
            let (a0, a1, a2, a3) = (
                ad[r * m + i],
                ad[(r + 1) * m + i],
                ad[(r + 2) * m + i],
                ad[(r + 3) * m + i],
            );
            if a0 == 0.0 || a1 == 0.0 || a2 == 0.0 || a3 == 0.0 {
                for (dr, &av) in [a0, a1, a2, a3].iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let br = &bd[(r + dr) * n..(r + dr + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            } else {
                let b0 = &bd[r * n..(r + 1) * n];
                let b1 = &bd[(r + 1) * n..(r + 2) * n];
                let b2 = &bd[(r + 2) * n..(r + 3) * n];
                let b3 = &bd[(r + 3) * n..(r + 4) * n];
                for j in 0..n {
                    out_row[j] =
                        (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
                }
            }
            r += 4;
        }
        while r < rr {
            let av = ad[r * m + i];
            if av != 0.0 {
                let br = &bd[r * n..(r + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
            r += 1;
        }
    }
}

#[allow(clippy::needless_range_loop)]
fn matmul_a_bt_blocked(a: &Array, b: &Array, out: &mut Array) {
    debug_assert_eq!(a.cols(), b.cols());
    debug_assert_eq!(out.shape(), (a.rows(), b.rows()));
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            // Eight partial lanes + a fixed reduction tree: reassociates
            // the k-sum, so this kernel is ULP-bounded, not bitwise.
            let mut lanes = [0.0f32; 8];
            let ac = a_row.chunks_exact(8);
            let bc = b_row.chunks_exact(8);
            let (arem, brem) = (ac.remainder(), bc.remainder());
            for (qa, qb) in ac.zip(bc) {
                for l in 0..8 {
                    lanes[l] += qa[l] * qb[l];
                }
            }
            let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
                + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
            for (&av, &bv) in arem.iter().zip(brem) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

fn bcast_zip_into_blocked(a: &Array, b: &Array, out: &mut Array, f: impl Fn(f32, f32) -> f32) {
    let (r, c) = out.shape();
    debug_assert_eq!(
        (r, c),
        kernels::broadcast_shape(a.shape(), b.shape(), "bcast_zip_into")
    );
    // Specialise the broadcast shapes the models actually hit so the inner
    // loop is a branch-free zip; each element sees one application of `f`
    // on the same operands as the scalar loop, so all paths are bitwise.
    if a.shape() == (r, c) && b.shape() == (r, c) {
        for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
            *o = f(x, y);
        }
    } else if a.shape() == (r, c) && b.shape() == (1, c) {
        let brow = b.row(0);
        for i in 0..r {
            for ((o, &x), &y) in out.row_mut(i).iter_mut().zip(a.row(i)).zip(brow) {
                *o = f(x, y);
            }
        }
    } else if a.shape() == (1, c) && b.shape() == (r, c) {
        let arow = a.row(0);
        for i in 0..r {
            for ((o, &x), &y) in out.row_mut(i).iter_mut().zip(arow).zip(b.row(i)) {
                *o = f(x, y);
            }
        }
    } else if a.shape() == (r, c) && b.shape() == (r, 1) {
        for i in 0..r {
            let y = b.at(i, 0);
            for (o, &x) in out.row_mut(i).iter_mut().zip(a.row(i)) {
                *o = f(x, y);
            }
        }
    } else if a.shape() == (r, 1) && b.shape() == (r, c) {
        for i in 0..r {
            let x = a.at(i, 0);
            for (o, &y) in out.row_mut(i).iter_mut().zip(b.row(i)) {
                *o = f(x, y);
            }
        }
    } else {
        kernels::bcast_zip_into(a, b, out, f);
    }
}

fn reduce_into_blocked(grad: &Array, into: &mut Array) {
    let (gr, gc) = grad.shape();
    let (tr, tc) = into.shape();
    debug_assert!(
        (tr == gr || tr == 1) && (tc == gc || tc == 1),
        "reduce_into: grad {:?} to {:?}",
        grad.shape(),
        into.shape()
    );
    // Every specialisation below performs each target cell's additions in
    // the same ascending (i, j) order as the scalar loop — bitwise equal
    // even though `into` may arrive non-zero (gradient accumulation).
    if (tr, tc) == (gr, gc) {
        for (t, &g) in into.data_mut().iter_mut().zip(grad.data()) {
            *t += g;
        }
    } else if tr == 1 && tc == gc {
        let trow = into.row_mut(0);
        for i in 0..gr {
            for (t, &g) in trow.iter_mut().zip(grad.row(i)) {
                *t += g;
            }
        }
    } else if tc == 1 && tr == gr {
        for i in 0..gr {
            let cell = into.at_mut(i, 0);
            let mut acc = *cell;
            for &g in grad.row(i) {
                acc += g;
            }
            *cell = acc;
        }
    } else {
        // [1, 1] target: one running accumulator over the row-major data.
        let cell = into.at_mut(0, 0);
        let mut acc = *cell;
        for &g in grad.data() {
            acc += g;
        }
        *cell = acc;
    }
}

fn logsumexp_cols_blocked(a: &Array) -> Array {
    let (r, c) = a.shape();
    let mut out = Array::zeros(1, c);
    // Row-major streaming (two passes over contiguous rows) instead of the
    // scalar column-major walk; each column's max and sum still fold in
    // ascending-row order, so the result is bitwise identical.
    let mut maxes = vec![f32::NEG_INFINITY; c];
    for i in 0..r {
        for (m, &v) in maxes.iter_mut().zip(a.row(i)) {
            *m = m.max(v);
        }
    }
    let mut sums = vec![0.0f32; c];
    for i in 0..r {
        for ((s, &v), &m) in sums.iter_mut().zip(a.row(i)).zip(&maxes) {
            *s += (v - m).exp();
        }
    }
    for ((o, &m), &s) in out.row_mut(0).iter_mut().zip(&maxes).zip(&sums) {
        // All-(-∞) columns produce a NaN sum (e^(−∞ − −∞)); the scalar
        // kernel never computes it, this one discards it.
        *o = if m == f32::NEG_INFINITY {
            f32::NEG_INFINITY
        } else {
            m + s.ln()
        };
    }
    out
}

fn log_softmax_rows_blocked(a: &Array) -> Array {
    let (r, c) = a.shape();
    let mut out = Array::zeros(r, c);
    for i in 0..r {
        let row = a.row(i);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = max + row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
        for (o, &x) in out.row_mut(i).iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    out
}

fn max_cols_blocked(a: &Array) -> (Array, Vec<usize>) {
    let (r, c) = a.shape();
    assert!(r > 0, "max_cols on empty array");
    let mut out = Array::zeros(1, c);
    let mut arg = vec![0usize; c];
    out.row_mut(0).copy_from_slice(a.row(0));
    for i in 1..r {
        // Same strict `>` in ascending-row order as the scalar kernel:
        // first-max-wins tie-breaking is preserved exactly.
        for ((j, &v), best) in a.row(i).iter().enumerate().zip(out.row_mut(0).iter_mut()) {
            if v > *best {
                *best = v;
                arg[j] = i;
            }
        }
    }
    (out, arg)
}

fn crf_forward_lattice_blocked(emissions: &Array, trans: &Array, start: &Array) -> Array {
    let (len, l) = emissions.shape();
    assert!(len > 0, "crf_forward_lattice: empty sequence");
    assert_eq!(trans.shape(), (l, l), "crf_forward_lattice: trans shape");
    assert_eq!(start.shape(), (1, l), "crf_forward_lattice: start shape");
    let mut alpha = Array::zeros(len, l);
    for ((o, &e), &s) in alpha
        .row_mut(0)
        .iter_mut()
        .zip(emissions.row(0))
        .zip(start.row(0))
    {
        *o = e + s;
    }
    let mut maxes = vec![0.0f32; l];
    let mut sums = vec![0.0f32; l];
    for t in 1..len {
        // Stream the transition matrix row-major (the scalar loop walks it
        // column-major per target label); per-column max and sum still fold
        // over ascending source labels, so the lattice is bitwise equal.
        maxes.fill(f32::NEG_INFINITY);
        for i in 0..l {
            let av = alpha.at(t - 1, i);
            for (m, &tv) in maxes.iter_mut().zip(trans.row(i)) {
                *m = m.max(av + tv);
            }
        }
        sums.fill(0.0);
        for i in 0..l {
            let av = alpha.at(t - 1, i);
            for ((s, &tv), &m) in sums.iter_mut().zip(trans.row(i)).zip(&maxes) {
                *s += (av + tv - m).exp();
            }
        }
        for (((o, &m), &s), &e) in alpha
            .row_mut(t)
            .iter_mut()
            .zip(&maxes)
            .zip(&sums)
            .zip(emissions.row(t))
        {
            let lse = if m == f32::NEG_INFINITY {
                f32::NEG_INFINITY
            } else {
                m + s.ln()
            };
            *o = lse + e;
        }
    }
    alpha
}

fn crf_backward_lattice_blocked(emissions: &Array, trans: &Array) -> Array {
    let (len, l) = emissions.shape();
    assert!(len > 0, "crf_backward_lattice: empty sequence");
    assert_eq!(trans.shape(), (l, l), "crf_backward_lattice: trans shape");
    let mut beta = Array::zeros(len, l);
    let mut eb = vec![0.0f32; l];
    for t in (0..len.saturating_sub(1)).rev() {
        for ((e, &em), &bt) in eb.iter_mut().zip(emissions.row(t + 1)).zip(beta.row(t + 1)) {
            *e = em + bt;
        }
        for i in 0..l {
            // The backward recursion is already row-major over `trans`;
            // the blocked variant runs on slices with the identical
            // ascending-j max/sum order.
            let trow = trans.row(i);
            let mut max = f32::NEG_INFINITY;
            for (&tv, &e) in trow.iter().zip(&eb) {
                max = max.max(tv + e);
            }
            let lse = if max == f32::NEG_INFINITY {
                f32::NEG_INFINITY
            } else {
                let mut sum = 0.0f32;
                for (&tv, &e) in trow.iter().zip(&eb) {
                    sum += (tv + e - max).exp();
                }
                max + sum.ln()
            };
            *beta.at_mut(t, i) = lse;
        }
    }
    beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_util::Rng;

    #[test]
    fn backend_parses_and_names() {
        assert_eq!("scalar".parse(), Ok(KernelBackend::Scalar));
        assert_eq!("blocked".parse(), Ok(KernelBackend::Blocked));
        assert!("simd".parse::<KernelBackend>().is_err());
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Blocked.name(), "blocked");
        assert_eq!(KernelBackend::default(), KernelBackend::Blocked);
    }

    #[test]
    fn blocked_matmul_is_bitwise_equal_on_awkward_shapes() {
        // Shapes straddle the unroll (k % 4 ≠ 0) and the J_TILE boundary.
        let mut rng = Rng::new(21);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (5, 9, 130),
            (2, 130, 3),
        ] {
            let a = Array::uniform(m, k, -1.0, 1.0, &mut rng);
            let b = Array::uniform(k, n, -1.0, 1.0, &mut rng);
            let mut s = Array::uniform(m, n, -1.0, 1.0, &mut rng);
            let mut bl = s.clone();
            KernelBackend::Scalar.matmul_into(&a, &b, &mut s, true);
            KernelBackend::Blocked.matmul_into(&a, &b, &mut bl, true);
            for (x, y) in s.data().iter().zip(bl.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "[{m},{k}]x[{k},{n}]");
            }
        }
    }

    #[test]
    fn blocked_matmul_preserves_the_zero_skip() {
        // A `-0.0` accumulator must stay `-0.0` when the a-coefficient is
        // zero: the scalar kernel skips the k entirely.
        let a = Array::from_vec(1, 4, vec![0.0, 0.0, 0.0, 0.0]);
        let b = Array::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let mut s = Array::from_vec(1, 1, vec![-0.0]);
        let mut bl = s.clone();
        KernelBackend::Scalar.matmul_into(&a, &b, &mut s, true);
        KernelBackend::Blocked.matmul_into(&a, &b, &mut bl, true);
        assert_eq!(s.data()[0].to_bits(), (-0.0f32).to_bits());
        assert_eq!(s.data()[0].to_bits(), bl.data()[0].to_bits());
    }

    #[test]
    fn crf_lattices_agree_with_graph_composition_shapes() {
        let mut rng = Rng::new(33);
        let emissions = Array::uniform(5, 7, -2.0, 2.0, &mut rng);
        let trans = Array::uniform(7, 7, -1.0, 1.0, &mut rng);
        let start = Array::uniform(1, 7, -1.0, 1.0, &mut rng);
        for backend in [KernelBackend::Scalar, KernelBackend::Blocked] {
            let alpha = backend.crf_forward_lattice(&emissions, &trans, &start);
            let beta = backend.crf_backward_lattice(&emissions, &trans);
            assert_eq!(alpha.shape(), (5, 7));
            assert_eq!(beta.shape(), (5, 7));
            // α/β consistency: lse(α_t + β_t) is log Z at every position.
            let log_z = kernels::logsumexp_all(&Array::from_vec(1, 7, alpha.row(4).to_vec()));
            for t in 0..5 {
                let joined: Vec<f32> = alpha
                    .row(t)
                    .iter()
                    .zip(beta.row(t))
                    .map(|(&a, &b)| a + b)
                    .collect();
                let z_t = kernels::logsumexp_all(&Array::from_vec(1, 7, joined));
                assert!((z_t - log_z).abs() < 1e-3, "t={t}: {z_t} vs {log_z}");
            }
        }
    }
}
