//! Named parameter stores and gradient accumulators.
//!
//! FEWNER's central idea is the *split* between the task-independent
//! parameters θ and the task-specific context parameters φ (paper §3.2.1).
//! We make that split structural: θ and φ live in two separate
//! [`ParamStore`]s, forward passes can bind parameters from any number of
//! stores, and [`crate::graph::Gradients::for_store`] extracts gradients per
//! store. The inner loop then optimises only φ's store and the outer loop
//! only θ's — exactly Algorithm 1 of the paper — with no masking tricks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fewner_util::{Error, FromJson, Json, Result, ToJson};

use crate::array::Array;

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// Identifies a parameter within its store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId {
    pub(crate) store: u64,
    pub(crate) index: usize,
}

impl ParamId {
    /// The position of the parameter within its store.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// An ordered collection of named parameter tensors.
///
/// Cloning a store is cheap (`Arc` per tensor, copy-on-write on update) and
/// **preserves the store's identity**: a clone answers for the same
/// [`ParamId`]s and its gradients can be applied to the original. This is
/// deliberate — it is what lets first-order MAML adapt a copy of θ on a
/// support set and push the resulting query gradients back into the
/// meta-initialisation without any index translation.
#[derive(Debug, Clone)]
pub struct ParamStore {
    id: u64,
    names: Vec<String>,
    values: Vec<Arc<Array>>,
    by_name: HashMap<String, usize>,
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// Creates an empty store with a process-unique identity.
    pub fn new() -> ParamStore {
        ParamStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            names: Vec::new(),
            values: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The store's unique identity (used to route gradients).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers a parameter. Panics on duplicate names: parameter layouts
    /// are fixed at model construction time, so a duplicate is a code bug.
    pub fn add(&mut self, name: impl Into<String>, value: Array) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate parameter name: {name}"
        );
        let index = self.values.len();
        self.by_name.insert(name.clone(), index);
        self.names.push(name);
        self.values.push(Arc::new(value));
        ParamId {
            store: self.id,
            index,
        }
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|v| v.len()).sum()
    }

    /// Shared handle to a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Arc<Array> {
        assert_eq!(id.store, self.id, "ParamId used with the wrong store");
        &self.values[id.index]
    }

    /// Parameter value by position (for optimizers and serialisation).
    pub fn value_at(&self, index: usize) -> &Arc<Array> {
        &self.values[index]
    }

    /// Parameter name by position.
    pub fn name_at(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Looks a parameter up by name.
    pub fn get(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).map(|&index| ParamId {
            store: self.id,
            index,
        })
    }

    /// Mutable access to a parameter value for in-place updates.
    ///
    /// Cheap when no computation graph still holds the value (the usual case
    /// between optimisation steps); clones the tensor otherwise.
    pub fn value_mut(&mut self, index: usize) -> &mut Array {
        Arc::make_mut(&mut self.values[index])
    }

    /// Replaces a parameter value wholesale.
    pub fn set(&mut self, id: ParamId, value: Array) {
        assert_eq!(id.store, self.id, "ParamId used with the wrong store");
        let old = &self.values[id.index];
        assert_eq!(
            old.shape(),
            value.shape(),
            "ParamStore::set shape change for `{}`",
            self.names[id.index]
        );
        self.values[id.index] = Arc::new(value);
    }

    /// Resets every parameter to zero, keeping shapes — used for the context
    /// parameters φ, which the paper re-initialises to **0** for every task.
    pub fn zero_all(&mut self) {
        for v in &mut self.values {
            Arc::make_mut(v).fill_zero();
        }
    }

    /// Snapshot of all values (used to verify θ is untouched by adaptation).
    pub fn snapshot(&self) -> Vec<Array> {
        self.values.iter().map(|v| (**v).clone()).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// A stale snapshot (wrong parameter count or tensor shapes) is
    /// rejected with [`Error::ShapeMismatch`] rather than panicking, so a
    /// bad restore cannot abort a long run; the store is left untouched on
    /// error.
    pub fn restore(&mut self, snapshot: &[Array]) -> Result<()> {
        if snapshot.len() != self.values.len() {
            return Err(Error::ShapeMismatch {
                op: "ParamStore::restore",
                detail: format!(
                    "snapshot has {} tensors, store has {}",
                    snapshot.len(),
                    self.values.len()
                ),
            });
        }
        for (i, s) in snapshot.iter().enumerate() {
            if s.shape() != self.values[i].shape() {
                return Err(Error::ShapeMismatch {
                    op: "ParamStore::restore",
                    detail: format!(
                        "parameter `{}`: snapshot {:?} vs store {:?}",
                        self.names[i],
                        s.shape(),
                        self.values[i].shape()
                    ),
                });
            }
        }
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            *v = Arc::new(s.clone());
        }
        Ok(())
    }

    /// Serialises the store's names and values.
    pub fn to_saved(&self) -> SavedParams {
        SavedParams {
            entries: self
                .names
                .iter()
                .zip(&self.values)
                .map(|(n, v)| (n.clone(), (**v).clone()))
                .collect(),
        }
    }

    /// Loads values from a [`SavedParams`] with matching names and shapes.
    pub fn load_saved(&mut self, saved: &SavedParams) -> Result<()> {
        if saved.entries.len() != self.values.len() {
            return Err(Error::Serde(format!(
                "saved parameter count {} != store count {}",
                saved.entries.len(),
                self.values.len()
            )));
        }
        for (i, (name, value)) in saved.entries.iter().enumerate() {
            if name != &self.names[i] {
                return Err(Error::Serde(format!(
                    "parameter {i} name mismatch: saved `{name}` vs store `{}`",
                    self.names[i]
                )));
            }
            if value.shape() != self.values[i].shape() {
                return Err(Error::Serde(format!(
                    "parameter `{name}` shape mismatch: saved {:?} vs store {:?}",
                    value.shape(),
                    self.values[i].shape()
                )));
            }
            self.values[i] = Arc::new(value.clone());
        }
        Ok(())
    }

    /// Iterator over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Array>)> {
        self.names
            .iter()
            .map(|s| s.as_str())
            .zip(self.values.iter())
    }
}

/// Serialisable snapshot of a parameter store.
#[derive(Debug, Clone)]
pub struct SavedParams {
    /// `(name, value)` in registration order.
    pub entries: Vec<(String, Array)>,
}

impl ToJson for SavedParams {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(name, value)| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(name.as_str())),
                        ("value".into(), value.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for SavedParams {
    fn from_json(json: &Json) -> Result<SavedParams> {
        let entries = json
            .as_arr()?
            .iter()
            .map(|entry| {
                Ok((
                    entry.field("name")?.as_str()?.to_string(),
                    Array::from_json(entry.field("value")?)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SavedParams { entries })
    }
}

/// Per-store gradient accumulator, indexable by [`ParamId`].
#[derive(Debug, Clone)]
pub struct ParamGrads {
    store: u64,
    grads: Vec<Option<Array>>,
}

impl ParamGrads {
    /// Creates a zeroed accumulator matching `store`'s layout.
    pub fn zeros_like(store: &ParamStore) -> ParamGrads {
        ParamGrads {
            store: store.id,
            grads: vec![None; store.len()],
        }
    }

    pub(crate) fn new_raw(store: u64, len: usize) -> ParamGrads {
        ParamGrads {
            store,
            grads: vec![None; len],
        }
    }

    /// The id of the store this accumulator belongs to.
    pub fn store_id(&self) -> u64 {
        self.store
    }

    /// Gradient for a parameter, if any was produced.
    pub fn get(&self, id: ParamId) -> Option<&Array> {
        assert_eq!(id.store, self.store, "ParamId used with wrong gradients");
        self.grads[id.index].as_ref()
    }

    /// Gradient by position.
    pub fn get_at(&self, index: usize) -> Option<&Array> {
        self.grads[index].as_ref()
    }

    /// Adds `grad` into the slot at `index` (allocating it on first use).
    pub fn accumulate(&mut self, index: usize, grad: &Array) {
        match &mut self.grads[index] {
            Some(g) => g.axpy(1.0, grad),
            slot => *slot = Some(grad.clone()),
        }
    }

    /// Adds `alpha * other` into this accumulator (meta-batch averaging).
    pub fn axpy(&mut self, alpha: f32, other: &ParamGrads) {
        assert_eq!(self.store, other.store);
        for (mine, theirs) in self.grads.iter_mut().zip(&other.grads) {
            if let Some(t) = theirs {
                match mine {
                    Some(m) => m.axpy(alpha, t),
                    slot => {
                        let mut scaled = t.clone();
                        scaled.scale_in_place(alpha);
                        *slot = Some(scaled);
                    }
                }
            }
        }
    }

    /// Adds `other` into this accumulator (`axpy` with α = 1).
    pub fn add_assign(&mut self, other: &ParamGrads) {
        self.axpy(1.0, other);
    }

    /// Sums accumulators **in iteration order** and returns the total.
    ///
    /// The parallel meta-batch engine collects one `ParamGrads` per task
    /// (indexed by the task's position in the batch) and reduces them here
    /// on a single thread. Because floating-point addition is not
    /// associative, reducing in a fixed order is what makes the parallel
    /// trainer bitwise-identical to the serial one: the summation order
    /// depends only on task indices, never on thread completion order.
    pub fn sum_in_order<I>(grads: I) -> Option<ParamGrads>
    where
        I: IntoIterator<Item = ParamGrads>,
    {
        let mut iter = grads.into_iter();
        let mut acc = iter.next()?;
        for g in iter {
            acc.add_assign(&g);
        }
        Some(acc)
    }

    /// Scales all gradients in place.
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_in_place(alpha);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.norm_sq())
            .sum::<f32>()
            .sqrt()
    }

    /// Rescales so the global norm does not exceed `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// True when every present gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.grads.iter().flatten().all(|g| g.all_finite())
    }

    /// Number of slots (== the store's parameter count).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when the accumulator has no slots.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Rebinds the accumulator to a different store id.
    ///
    /// Store ids are per-process, so gradients that cross a process
    /// boundary (the sharded-training exchange) arrive untagged and must
    /// be rebound to the receiver's own store before they can be applied.
    /// The caller vouches that the slot layout matches — which holds
    /// whenever both sides built the same learner from the same
    /// [`RunFingerprint`]-checked configuration.
    ///
    /// [`RunFingerprint`]: https://docs.rs/fewner-core
    pub fn retag(&mut self, store: u64) {
        self.store = store;
    }
}

/// Slots in order; an absent gradient is `null`. The store id is *not*
/// serialised (it is meaningless outside this process) — deserialised
/// accumulators carry id 0 until [`ParamGrads::retag`] rebinds them.
/// `f32` values survive bit-exactly (see [`fewner_util::json`]).
impl ToJson for ParamGrads {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.grads
                .iter()
                .map(|g| match g {
                    Some(a) => a.to_json(),
                    None => Json::Null,
                })
                .collect(),
        )
    }
}

impl FromJson for ParamGrads {
    fn from_json(json: &Json) -> Result<ParamGrads> {
        let grads = json
            .as_arr()?
            .iter()
            .map(|g| match g {
                Json::Null => Ok(None),
                other => Array::from_json(other).map(Some),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ParamGrads { store: 0, grads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
        store.set(id, Array::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(store.value(id).data(), &[3.0, 4.0]);
        assert_eq!(store.get("w"), Some(id));
        assert_eq!(store.get("missing"), None);
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let mut store = ParamStore::new();
        store.add("w", Array::zeros(1, 1));
        store.add("w", Array::zeros(1, 1));
    }

    #[test]
    fn stores_have_distinct_ids() {
        let a = ParamStore::new();
        let b = ParamStore::new();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "wrong store")]
    fn cross_store_id_use_panics() {
        let mut a = ParamStore::new();
        let b = ParamStore::new();
        let id = a.add("w", Array::zeros(1, 1));
        let _ = b.value(id);
    }

    #[test]
    fn zero_all_matches_paper_phi_reset() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        store.zero_all();
        assert_eq!(store.value(id).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        let snap = store.snapshot();
        store.set(id, Array::from_vec(1, 2, vec![9.0, 9.0]));
        store.restore(&snap).unwrap();
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
    }

    #[test]
    fn stale_snapshot_is_rejected_not_a_panic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));

        // Wrong tensor count.
        let err = store.restore(&[]).unwrap_err();
        assert!(matches!(
            err,
            fewner_util::Error::ShapeMismatch {
                op: "ParamStore::restore",
                ..
            }
        ));

        // Wrong shape; the store must be left untouched.
        store.set(id, Array::from_vec(1, 2, vec![5.0, 6.0]));
        let err = store.restore(&[Array::zeros(2, 2)]).unwrap_err();
        assert!(matches!(err, fewner_util::Error::ShapeMismatch { .. }));
        assert_eq!(store.value(id).data(), &[5.0, 6.0]);
    }

    #[test]
    fn saved_params_round_trip_and_validation() {
        let mut store = ParamStore::new();
        store.add("a", Array::from_vec(1, 2, vec![1.0, 2.0]));
        store.add("b", Array::from_vec(2, 1, vec![3.0, 4.0]));
        let saved = store.to_saved();
        let json = saved.to_json().to_string();
        let back = SavedParams::from_json(&Json::parse(&json).unwrap()).unwrap();

        let mut store2 = ParamStore::new();
        store2.add("a", Array::zeros(1, 2));
        store2.add("b", Array::zeros(2, 1));
        store2.load_saved(&back).unwrap();
        assert_eq!(store2.value_at(0).data(), &[1.0, 2.0]);

        // Name mismatch is rejected.
        let mut store3 = ParamStore::new();
        store3.add("x", Array::zeros(1, 2));
        store3.add("b", Array::zeros(2, 1));
        assert!(store3.load_saved(&back).is_err());
    }

    #[test]
    fn grads_accumulate_scale_clip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::zeros(1, 2));
        let mut grads = ParamGrads::zeros_like(&store);
        grads.accumulate(id.index(), &Array::from_vec(1, 2, vec![3.0, 4.0]));
        grads.accumulate(id.index(), &Array::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(grads.get(id).unwrap().data(), &[6.0, 8.0]);
        assert!((grads.global_norm() - 10.0).abs() < 1e-6);
        grads.clip_global_norm(5.0);
        assert!((grads.global_norm() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn grads_axpy_handles_missing_slots() {
        let mut store = ParamStore::new();
        let a = store.add("a", Array::zeros(1, 1));
        let b = store.add("b", Array::zeros(1, 1));
        let mut g1 = ParamGrads::zeros_like(&store);
        g1.accumulate(a.index(), &Array::scalar(1.0));
        let mut g2 = ParamGrads::zeros_like(&store);
        g2.accumulate(b.index(), &Array::scalar(2.0));
        g1.axpy(0.5, &g2);
        assert_eq!(g1.get(a).unwrap().scalar_value(), 1.0);
        assert_eq!(g1.get(b).unwrap().scalar_value(), 1.0);
    }

    #[test]
    fn grads_json_round_trip_is_bit_exact() {
        let mut store = ParamStore::new();
        let a = store.add("a", Array::zeros(1, 3));
        let _b = store.add("b", Array::zeros(1, 1)); // stays None
        let mut grads = ParamGrads::zeros_like(&store);
        // Awkward values: subnormal, negative zero, an irrational fraction.
        grads.accumulate(
            a.index(),
            &Array::from_vec(1, 3, vec![1.0e-41, -0.0, 1.0 / 3.0]),
        );

        let text = grads.to_json().to_string();
        let mut back = ParamGrads::from_json(&fewner_util::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.store_id(), 0);
        back.retag(grads.store_id());
        assert_eq!(back.store_id(), grads.store_id());
        assert_eq!(back.len(), grads.len());
        assert!(back.get_at(1).is_none());
        let bits = |g: &ParamGrads| -> Vec<u32> {
            g.get_at(0)
                .unwrap()
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        };
        assert_eq!(
            bits(&back),
            bits(&grads),
            "f32 payload must survive bitwise"
        );
    }
}
