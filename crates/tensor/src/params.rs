//! Named parameter stores and gradient accumulators.
//!
//! FEWNER's central idea is the *split* between the task-independent
//! parameters θ and the task-specific context parameters φ (paper §3.2.1).
//! We make that split structural: θ and φ live in two separate
//! [`ParamStore`]s, forward passes can bind parameters from any number of
//! stores, and [`crate::graph::Gradients::for_store`] extracts gradients per
//! store. The inner loop then optimises only φ's store and the outer loop
//! only θ's — exactly Algorithm 1 of the paper — with no masking tricks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fewner_util::{Error, FromJson, Json, Result, ToJson};

use crate::array::Array;

static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

/// Identifies a parameter within its store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId {
    pub(crate) store: u64,
    pub(crate) index: usize,
}

impl ParamId {
    /// The position of the parameter within its store.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// An ordered collection of named parameter tensors.
///
/// Cloning a store is cheap (`Arc` per tensor, copy-on-write on update) and
/// **preserves the store's identity**: a clone answers for the same
/// [`ParamId`]s and its gradients can be applied to the original. This is
/// deliberate — it is what lets first-order MAML adapt a copy of θ on a
/// support set and push the resulting query gradients back into the
/// meta-initialisation without any index translation.
#[derive(Debug, Clone)]
pub struct ParamStore {
    id: u64,
    names: Vec<String>,
    values: Vec<Arc<Array>>,
    by_name: HashMap<String, usize>,
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// Creates an empty store with a process-unique identity.
    pub fn new() -> ParamStore {
        ParamStore {
            id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
            names: Vec::new(),
            values: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The store's unique identity (used to route gradients).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers a parameter. Panics on duplicate names: parameter layouts
    /// are fixed at model construction time, so a duplicate is a code bug.
    pub fn add(&mut self, name: impl Into<String>, value: Array) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate parameter name: {name}"
        );
        let index = self.values.len();
        self.by_name.insert(name.clone(), index);
        self.names.push(name);
        self.values.push(Arc::new(value));
        ParamId {
            store: self.id,
            index,
        }
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|v| v.len()).sum()
    }

    /// Shared handle to a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Arc<Array> {
        assert_eq!(id.store, self.id, "ParamId used with the wrong store");
        &self.values[id.index]
    }

    /// Parameter value by position (for optimizers and serialisation).
    pub fn value_at(&self, index: usize) -> &Arc<Array> {
        &self.values[index]
    }

    /// Parameter name by position.
    pub fn name_at(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Looks a parameter up by name.
    pub fn get(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).map(|&index| ParamId {
            store: self.id,
            index,
        })
    }

    /// Mutable access to a parameter value for in-place updates.
    ///
    /// Cheap when no computation graph still holds the value (the usual case
    /// between optimisation steps); clones the tensor otherwise.
    pub fn value_mut(&mut self, index: usize) -> &mut Array {
        Arc::make_mut(&mut self.values[index])
    }

    /// Replaces a parameter value wholesale.
    pub fn set(&mut self, id: ParamId, value: Array) {
        assert_eq!(id.store, self.id, "ParamId used with the wrong store");
        let old = &self.values[id.index];
        assert_eq!(
            old.shape(),
            value.shape(),
            "ParamStore::set shape change for `{}`",
            self.names[id.index]
        );
        self.values[id.index] = Arc::new(value);
    }

    /// Resets every parameter to zero, keeping shapes — used for the context
    /// parameters φ, which the paper re-initialises to **0** for every task.
    pub fn zero_all(&mut self) {
        for v in &mut self.values {
            Arc::make_mut(v).fill_zero();
        }
    }

    /// Snapshot of all values (used to verify θ is untouched by adaptation).
    pub fn snapshot(&self) -> Vec<Array> {
        self.values.iter().map(|v| (**v).clone()).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// A stale snapshot (wrong parameter count or tensor shapes) is
    /// rejected with [`Error::ShapeMismatch`] rather than panicking, so a
    /// bad restore cannot abort a long run; the store is left untouched on
    /// error.
    pub fn restore(&mut self, snapshot: &[Array]) -> Result<()> {
        if snapshot.len() != self.values.len() {
            return Err(Error::ShapeMismatch {
                op: "ParamStore::restore",
                detail: format!(
                    "snapshot has {} tensors, store has {}",
                    snapshot.len(),
                    self.values.len()
                ),
            });
        }
        for (i, s) in snapshot.iter().enumerate() {
            if s.shape() != self.values[i].shape() {
                return Err(Error::ShapeMismatch {
                    op: "ParamStore::restore",
                    detail: format!(
                        "parameter `{}`: snapshot {:?} vs store {:?}",
                        self.names[i],
                        s.shape(),
                        self.values[i].shape()
                    ),
                });
            }
        }
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            *v = Arc::new(s.clone());
        }
        Ok(())
    }

    /// Serialises the store's names and values.
    pub fn to_saved(&self) -> SavedParams {
        SavedParams {
            entries: self
                .names
                .iter()
                .zip(&self.values)
                .map(|(n, v)| (n.clone(), (**v).clone()))
                .collect(),
        }
    }

    /// Rounds every tensor through `format` in place (encode → decode).
    ///
    /// This is the serve-time entry point for `--weights f16|i8`: the store
    /// afterwards holds exactly the values a quantized checkpoint would
    /// decode to, so in-memory quantization and loading a quantized file
    /// are interchangeable. `F32` is the identity and leaves the store
    /// untouched.
    pub fn quantize_all(&mut self, format: WeightFormat) {
        if format == WeightFormat::F32 {
            return;
        }
        for value in &mut self.values {
            let q = QuantArray::quantize(value, format);
            *Arc::make_mut(value) = q.dequantize();
        }
    }

    /// Loads values from a [`SavedParams`] with matching names and shapes.
    pub fn load_saved(&mut self, saved: &SavedParams) -> Result<()> {
        if saved.entries.len() != self.values.len() {
            return Err(Error::Serde(format!(
                "saved parameter count {} != store count {}",
                saved.entries.len(),
                self.values.len()
            )));
        }
        for (i, (name, value)) in saved.entries.iter().enumerate() {
            if name != &self.names[i] {
                return Err(Error::Serde(format!(
                    "parameter {i} name mismatch: saved `{name}` vs store `{}`",
                    self.names[i]
                )));
            }
            if value.shape() != self.values[i].shape() {
                return Err(Error::Serde(format!(
                    "parameter `{name}` shape mismatch: saved {:?} vs store {:?}",
                    value.shape(),
                    self.values[i].shape()
                )));
            }
            self.values[i] = Arc::new(value.clone());
        }
        Ok(())
    }

    /// Iterator over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Array>)> {
        self.names
            .iter()
            .map(|s| s.as_str())
            .zip(self.values.iter())
    }
}

/// Serialisable snapshot of a parameter store.
#[derive(Debug, Clone)]
pub struct SavedParams {
    /// `(name, value)` in registration order.
    pub entries: Vec<(String, Array)>,
}

impl ToJson for SavedParams {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|(name, value)| {
                    Json::Obj(vec![
                        ("name".into(), Json::from(name.as_str())),
                        ("value".into(), value.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for SavedParams {
    fn from_json(json: &Json) -> Result<SavedParams> {
        let entries = json
            .as_arr()?
            .iter()
            .map(|entry| {
                Ok((
                    entry.field("name")?.as_str()?.to_string(),
                    Array::from_json(entry.field("value")?)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SavedParams { entries })
    }
}

/// Serve-time weight format for the frozen θ (the `--weights` flag).
///
/// `F32` is the identity; `F16` rounds every value to IEEE half precision
/// (round-to-nearest-even); `I8` stores one signed byte per value with a
/// per-row absmax scale. Quantized θ trades a bounded F1 delta for a 2–4×
/// smaller checkpoint; the bounds are pinned by the end-to-end tolerance
/// suite (see DESIGN.md §5h).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightFormat {
    /// Full precision — bitwise identical to the trained checkpoint.
    #[default]
    F32,
    /// IEEE 754 half precision, round-to-nearest-even.
    F16,
    /// Per-row absmax int8 with power-of-two scales.
    I8,
}

impl std::str::FromStr for WeightFormat {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<WeightFormat, String> {
        match s {
            "f32" => Ok(WeightFormat::F32),
            "f16" => Ok(WeightFormat::F16),
            "i8" => Ok(WeightFormat::I8),
            other => Err(format!("unknown weight format `{other}` (f32|f16|i8)")),
        }
    }
}

impl WeightFormat {
    /// The format's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            WeightFormat::F32 => "f32",
            WeightFormat::F16 => "f16",
            WeightFormat::I8 => "i8",
        }
    }
}

/// Drops the low `k` bits of `v`, rounding to nearest with ties to even.
fn shift_round_even(v: u32, k: u32) -> u32 {
    if k == 0 {
        return v;
    }
    if k >= 32 {
        return 0;
    }
    let kept = v >> k;
    let rem = v & ((1 << k) - 1);
    let half = 1u32 << (k - 1);
    if rem > half || (rem == half && (kept & 1) == 1) {
        kept + 1
    } else {
        kept
    }
}

/// `f32` → IEEE half-precision bits, round-to-nearest-even. Hand-rolled
/// because the workspace takes no external crates; covers normals,
/// subnormals, overflow-to-infinity and NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Infinity keeps its class; any NaN maps to the canonical f16 NaN.
        return if abs > 0x7f80_0000 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    let exp = ((abs >> 23) as i32) - 127;
    if exp > 15 {
        return sign | 0x7c00;
    }
    let mant = abs & 0x007f_ffff;
    if exp >= -14 {
        // A mantissa carry propagates into the exponent, and at the very
        // top of the range on to infinity — exactly IEEE rounding.
        let h = (((exp + 15) as u32) << 10) + shift_round_even(mant, 13);
        return sign | h as u16;
    }
    if exp < -25 {
        // Below half the smallest subnormal: rounds to (signed) zero.
        return sign;
    }
    // f16 subnormal: shift the implicit-1 mantissa into place.
    let m = mant | 0x0080_0000;
    let k = (13 + (-14 - exp)) as u32;
    sign | shift_round_even(m, k) as u16
}

/// IEEE half-precision bits → `f32`. Exact (every f16 value is an f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    if exp == 0x1f {
        return f32::from_bits(sign | 0x7f80_0000 | (mant << 13));
    }
    if exp == 0 {
        // Subnormal (or zero): mant × 2⁻²⁴, exact in f32.
        let v = mant as f32 * (2.0f32).powi(-24);
        return if sign != 0 { -v } else { v };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (mant << 13))
}

/// The smallest power of two ≥ `t` (t positive, finite, normal-or-below).
///
/// I8 scales are powers of two on purpose: dequantisation `q · scale` is
/// then *exact* in f32, which is what makes encode→decode→encode a true
/// fixed point (see the property tests) — with a conventional
/// `absmax / 127` scale the re-derived scale can drift by an ULP per trip.
fn pow2_at_least(t: f32) -> f32 {
    debug_assert!(t > 0.0 && t.is_finite(), "pow2_at_least({t})");
    let bits = t.to_bits();
    let exp = (bits >> 23) & 0xff;
    let mant = bits & 0x007f_ffff;
    if exp == 0 {
        // Subnormal: the smallest normal is the next power of two at most.
        return f32::from_bits(1 << 23);
    }
    if mant == 0 {
        t
    } else {
        f32::from_bits((exp + 1) << 23)
    }
}

/// One quantized tensor: shape plus encoded payload.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantArray {
    /// Half-precision bits, row-major.
    F16 {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Row-major `f32_to_f16_bits` of every value.
        bits: Vec<u16>,
    },
    /// Per-row absmax int8: `value = q · scales[row]`.
    I8 {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// One power-of-two scale per row (`0.0` for an all-zero row).
        scales: Vec<f32>,
        /// Row-major quantized values in `[-127, 127]`.
        values: Vec<i8>,
    },
}

impl QuantArray {
    /// Encodes `a` in `format`.
    ///
    /// # Panics
    /// Panics on [`WeightFormat::F32`] (the identity format has no encoded
    /// form) and on weight magnitudes beyond any sane trained model
    /// (≥ 1e38, where int8 dequantisation could overflow).
    pub fn quantize(a: &Array, format: WeightFormat) -> QuantArray {
        let (rows, cols) = a.shape();
        match format {
            WeightFormat::F32 => panic!("QuantArray::quantize: F32 is the identity format"),
            WeightFormat::F16 => QuantArray::F16 {
                rows,
                cols,
                bits: a.data().iter().map(|&x| f32_to_f16_bits(x)).collect(),
            },
            WeightFormat::I8 => {
                let mut scales = Vec::with_capacity(rows);
                let mut values = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    let row = a.row(r);
                    let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    assert!(
                        absmax < 1.0e38,
                        "i8 quantization: row absmax {absmax} is not a sane weight"
                    );
                    if absmax == 0.0 {
                        scales.push(0.0);
                        values.extend(std::iter::repeat_n(0i8, cols));
                        continue;
                    }
                    let scale = pow2_at_least(absmax / 127.0);
                    scales.push(scale);
                    values.extend(
                        row.iter()
                            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8),
                    );
                }
                QuantArray::I8 {
                    rows,
                    cols,
                    scales,
                    values,
                }
            }
        }
    }

    /// The format this payload is encoded in.
    pub fn format(&self) -> WeightFormat {
        match self {
            QuantArray::F16 { .. } => WeightFormat::F16,
            QuantArray::I8 { .. } => WeightFormat::I8,
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            QuantArray::F16 { rows, cols, .. } | QuantArray::I8 { rows, cols, .. } => {
                (*rows, *cols)
            }
        }
    }

    /// Decodes back to full precision. For `I8` this is exact arithmetic
    /// (integer × power of two), so decode introduces no error beyond what
    /// encoding already rounded away.
    pub fn dequantize(&self) -> Array {
        match self {
            QuantArray::F16 { rows, cols, bits } => Array::from_vec(
                *rows,
                *cols,
                bits.iter().map(|&b| f16_bits_to_f32(b)).collect(),
            ),
            QuantArray::I8 {
                rows,
                cols,
                scales,
                values,
            } => {
                let mut data = Vec::with_capacity(rows * cols);
                for (r, &scale) in scales.iter().enumerate() {
                    data.extend(values[r * cols..(r + 1) * cols].iter().map(|&q| {
                        if scale == 0.0 {
                            0.0
                        } else {
                            q as f32 * scale
                        }
                    }));
                }
                Array::from_vec(*rows, *cols, data)
            }
        }
    }
}

impl ToJson for QuantArray {
    fn to_json(&self) -> Json {
        match self {
            QuantArray::F16 { rows, cols, bits } => Json::Obj(vec![
                ("kind".into(), Json::from("f16")),
                ("rows".into(), Json::from(*rows)),
                ("cols".into(), Json::from(*cols)),
                (
                    "bits".into(),
                    Json::Arr(bits.iter().map(|&b| Json::from(b as u64)).collect()),
                ),
            ]),
            QuantArray::I8 {
                rows,
                cols,
                scales,
                values,
            } => Json::Obj(vec![
                ("kind".into(), Json::from("i8")),
                ("rows".into(), Json::from(*rows)),
                ("cols".into(), Json::from(*cols)),
                (
                    "scales".into(),
                    Json::Arr(scales.iter().map(|&s| Json::from(s)).collect()),
                ),
                (
                    "values".into(),
                    Json::Arr(values.iter().map(|&q| Json::from(q as i64)).collect()),
                ),
            ]),
        }
    }
}

impl FromJson for QuantArray {
    fn from_json(json: &Json) -> Result<QuantArray> {
        let rows = json.field("rows")?.as_usize()?;
        let cols = json.field("cols")?.as_usize()?;
        let check = |n: usize, what: &str| -> Result<()> {
            if n != rows * cols {
                return Err(Error::Serde(format!(
                    "QuantArray holds {n} {what} for shape [{rows}, {cols}]"
                )));
            }
            Ok(())
        };
        match json.field("kind")?.as_str()? {
            "f16" => {
                let bits = json
                    .field("bits")?
                    .as_arr()?
                    .iter()
                    .map(|b| Ok(b.as_u64()? as u16))
                    .collect::<Result<Vec<u16>>>()?;
                check(bits.len(), "f16 words")?;
                Ok(QuantArray::F16 { rows, cols, bits })
            }
            "i8" => {
                let scales = json
                    .field("scales")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_f32)
                    .collect::<Result<Vec<f32>>>()?;
                if scales.len() != rows {
                    return Err(Error::Serde(format!(
                        "QuantArray holds {} scales for {rows} rows",
                        scales.len()
                    )));
                }
                let values = json
                    .field("values")?
                    .as_arr()?
                    .iter()
                    .map(|q| {
                        let v = q.as_f32()?;
                        if !(-127.0..=127.0).contains(&v) || v.fract() != 0.0 {
                            return Err(Error::Serde(format!("bad i8 quant value {v}")));
                        }
                        Ok(v as i8)
                    })
                    .collect::<Result<Vec<i8>>>()?;
                check(values.len(), "i8 values")?;
                Ok(QuantArray::I8 {
                    rows,
                    cols,
                    scales,
                    values,
                })
            }
            other => Err(Error::Serde(format!("unknown QuantArray kind `{other}`"))),
        }
    }
}

/// A quantized [`SavedParams`]: the serialisable form of a compressed θ.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedParams {
    /// The format every entry is encoded in (never `F32`).
    pub format: WeightFormat,
    /// `(name, payload)` in registration order.
    pub entries: Vec<(String, QuantArray)>,
}

impl QuantizedParams {
    /// Encodes every tensor of `saved` in `format` (not `F32`).
    pub fn quantize(saved: &SavedParams, format: WeightFormat) -> QuantizedParams {
        assert_ne!(format, WeightFormat::F32, "F32 is the identity format");
        QuantizedParams {
            format,
            entries: saved
                .entries
                .iter()
                .map(|(n, v)| (n.clone(), QuantArray::quantize(v, format)))
                .collect(),
        }
    }

    /// Decodes back to full-precision saved parameters.
    pub fn dequantize(&self) -> SavedParams {
        SavedParams {
            entries: self
                .entries
                .iter()
                .map(|(n, q)| (n.clone(), q.dequantize()))
                .collect(),
        }
    }
}

impl ToJson for QuantizedParams {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::from(self.format.name())),
            (
                "entries".into(),
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(name, q)| {
                            Json::Obj(vec![
                                ("name".into(), Json::from(name.as_str())),
                                ("value".into(), q.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for QuantizedParams {
    fn from_json(json: &Json) -> Result<QuantizedParams> {
        let format: WeightFormat = json
            .field("format")?
            .as_str()?
            .parse()
            .map_err(Error::Serde)?;
        if format == WeightFormat::F32 {
            return Err(Error::Serde(
                "QuantizedParams cannot carry format f32".into(),
            ));
        }
        let entries = json
            .field("entries")?
            .as_arr()?
            .iter()
            .map(|entry| {
                let name = entry.field("name")?.as_str()?.to_string();
                let q = QuantArray::from_json(entry.field("value")?)?;
                if q.format() != format {
                    return Err(Error::Serde(format!(
                        "entry `{name}` is {} inside a {} payload",
                        q.format().name(),
                        format.name()
                    )));
                }
                Ok((name, q))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(QuantizedParams { format, entries })
    }
}

/// Per-store gradient accumulator, indexable by [`ParamId`].
#[derive(Debug, Clone)]
pub struct ParamGrads {
    store: u64,
    grads: Vec<Option<Array>>,
}

impl ParamGrads {
    /// Creates a zeroed accumulator matching `store`'s layout.
    pub fn zeros_like(store: &ParamStore) -> ParamGrads {
        ParamGrads {
            store: store.id,
            grads: vec![None; store.len()],
        }
    }

    pub(crate) fn new_raw(store: u64, len: usize) -> ParamGrads {
        ParamGrads {
            store,
            grads: vec![None; len],
        }
    }

    /// The id of the store this accumulator belongs to.
    pub fn store_id(&self) -> u64 {
        self.store
    }

    /// Gradient for a parameter, if any was produced.
    pub fn get(&self, id: ParamId) -> Option<&Array> {
        assert_eq!(id.store, self.store, "ParamId used with wrong gradients");
        self.grads[id.index].as_ref()
    }

    /// Gradient by position.
    pub fn get_at(&self, index: usize) -> Option<&Array> {
        self.grads[index].as_ref()
    }

    /// Adds `grad` into the slot at `index` (allocating it on first use).
    pub fn accumulate(&mut self, index: usize, grad: &Array) {
        match &mut self.grads[index] {
            Some(g) => g.axpy(1.0, grad),
            slot => *slot = Some(grad.clone()),
        }
    }

    /// Adds `alpha * other` into this accumulator (meta-batch averaging).
    pub fn axpy(&mut self, alpha: f32, other: &ParamGrads) {
        assert_eq!(self.store, other.store);
        for (mine, theirs) in self.grads.iter_mut().zip(&other.grads) {
            if let Some(t) = theirs {
                match mine {
                    Some(m) => m.axpy(alpha, t),
                    slot => {
                        let mut scaled = t.clone();
                        scaled.scale_in_place(alpha);
                        *slot = Some(scaled);
                    }
                }
            }
        }
    }

    /// Adds `other` into this accumulator (`axpy` with α = 1).
    pub fn add_assign(&mut self, other: &ParamGrads) {
        self.axpy(1.0, other);
    }

    /// Sums accumulators **in iteration order** and returns the total.
    ///
    /// The parallel meta-batch engine collects one `ParamGrads` per task
    /// (indexed by the task's position in the batch) and reduces them here
    /// on a single thread. Because floating-point addition is not
    /// associative, reducing in a fixed order is what makes the parallel
    /// trainer bitwise-identical to the serial one: the summation order
    /// depends only on task indices, never on thread completion order.
    pub fn sum_in_order<I>(grads: I) -> Option<ParamGrads>
    where
        I: IntoIterator<Item = ParamGrads>,
    {
        let mut iter = grads.into_iter();
        let mut acc = iter.next()?;
        for g in iter {
            acc.add_assign(&g);
        }
        Some(acc)
    }

    /// Scales all gradients in place.
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_in_place(alpha);
        }
    }

    /// Global L2 norm over all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.norm_sq())
            .sum::<f32>()
            .sqrt()
    }

    /// Rescales so the global norm does not exceed `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// True when every present gradient is finite.
    pub fn all_finite(&self) -> bool {
        self.grads.iter().flatten().all(|g| g.all_finite())
    }

    /// Number of slots (== the store's parameter count).
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True when the accumulator has no slots.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Rebinds the accumulator to a different store id.
    ///
    /// Store ids are per-process, so gradients that cross a process
    /// boundary (the sharded-training exchange) arrive untagged and must
    /// be rebound to the receiver's own store before they can be applied.
    /// The caller vouches that the slot layout matches — which holds
    /// whenever both sides built the same learner from the same
    /// [`RunFingerprint`]-checked configuration.
    ///
    /// [`RunFingerprint`]: https://docs.rs/fewner-core
    pub fn retag(&mut self, store: u64) {
        self.store = store;
    }
}

/// Slots in order; an absent gradient is `null`. The store id is *not*
/// serialised (it is meaningless outside this process) — deserialised
/// accumulators carry id 0 until [`ParamGrads::retag`] rebinds them.
/// `f32` values survive bit-exactly (see [`fewner_util::json`]).
impl ToJson for ParamGrads {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.grads
                .iter()
                .map(|g| match g {
                    Some(a) => a.to_json(),
                    None => Json::Null,
                })
                .collect(),
        )
    }
}

impl FromJson for ParamGrads {
    fn from_json(json: &Json) -> Result<ParamGrads> {
        let grads = json
            .as_arr()?
            .iter()
            .map(|g| match g {
                Json::Null => Ok(None),
                other => Array::from_json(other).map(Some),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ParamGrads { store: 0, grads })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
        store.set(id, Array::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(store.value(id).data(), &[3.0, 4.0]);
        assert_eq!(store.get("w"), Some(id));
        assert_eq!(store.get("missing"), None);
        assert_eq!(store.num_scalars(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        let mut store = ParamStore::new();
        store.add("w", Array::zeros(1, 1));
        store.add("w", Array::zeros(1, 1));
    }

    #[test]
    fn stores_have_distinct_ids() {
        let a = ParamStore::new();
        let b = ParamStore::new();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    #[should_panic(expected = "wrong store")]
    fn cross_store_id_use_panics() {
        let mut a = ParamStore::new();
        let b = ParamStore::new();
        let id = a.add("w", Array::zeros(1, 1));
        let _ = b.value(id);
    }

    #[test]
    fn zero_all_matches_paper_phi_reset() {
        let mut store = ParamStore::new();
        let id = store.add("phi", Array::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        store.zero_all();
        assert_eq!(store.value(id).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));
        let snap = store.snapshot();
        store.set(id, Array::from_vec(1, 2, vec![9.0, 9.0]));
        store.restore(&snap).unwrap();
        assert_eq!(store.value(id).data(), &[1.0, 2.0]);
    }

    #[test]
    fn stale_snapshot_is_rejected_not_a_panic() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::from_vec(1, 2, vec![1.0, 2.0]));

        // Wrong tensor count.
        let err = store.restore(&[]).unwrap_err();
        assert!(matches!(
            err,
            fewner_util::Error::ShapeMismatch {
                op: "ParamStore::restore",
                ..
            }
        ));

        // Wrong shape; the store must be left untouched.
        store.set(id, Array::from_vec(1, 2, vec![5.0, 6.0]));
        let err = store.restore(&[Array::zeros(2, 2)]).unwrap_err();
        assert!(matches!(err, fewner_util::Error::ShapeMismatch { .. }));
        assert_eq!(store.value(id).data(), &[5.0, 6.0]);
    }

    #[test]
    fn saved_params_round_trip_and_validation() {
        let mut store = ParamStore::new();
        store.add("a", Array::from_vec(1, 2, vec![1.0, 2.0]));
        store.add("b", Array::from_vec(2, 1, vec![3.0, 4.0]));
        let saved = store.to_saved();
        let json = saved.to_json().to_string();
        let back = SavedParams::from_json(&Json::parse(&json).unwrap()).unwrap();

        let mut store2 = ParamStore::new();
        store2.add("a", Array::zeros(1, 2));
        store2.add("b", Array::zeros(2, 1));
        store2.load_saved(&back).unwrap();
        assert_eq!(store2.value_at(0).data(), &[1.0, 2.0]);

        // Name mismatch is rejected.
        let mut store3 = ParamStore::new();
        store3.add("x", Array::zeros(1, 2));
        store3.add("b", Array::zeros(2, 1));
        assert!(store3.load_saved(&back).is_err());
    }

    #[test]
    fn grads_accumulate_scale_clip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Array::zeros(1, 2));
        let mut grads = ParamGrads::zeros_like(&store);
        grads.accumulate(id.index(), &Array::from_vec(1, 2, vec![3.0, 4.0]));
        grads.accumulate(id.index(), &Array::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(grads.get(id).unwrap().data(), &[6.0, 8.0]);
        assert!((grads.global_norm() - 10.0).abs() < 1e-6);
        grads.clip_global_norm(5.0);
        assert!((grads.global_norm() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn grads_axpy_handles_missing_slots() {
        let mut store = ParamStore::new();
        let a = store.add("a", Array::zeros(1, 1));
        let b = store.add("b", Array::zeros(1, 1));
        let mut g1 = ParamGrads::zeros_like(&store);
        g1.accumulate(a.index(), &Array::scalar(1.0));
        let mut g2 = ParamGrads::zeros_like(&store);
        g2.accumulate(b.index(), &Array::scalar(2.0));
        g1.axpy(0.5, &g2);
        assert_eq!(g1.get(a).unwrap().scalar_value(), 1.0);
        assert_eq!(g1.get(b).unwrap().scalar_value(), 1.0);
    }

    #[test]
    fn grads_json_round_trip_is_bit_exact() {
        let mut store = ParamStore::new();
        let a = store.add("a", Array::zeros(1, 3));
        let _b = store.add("b", Array::zeros(1, 1)); // stays None
        let mut grads = ParamGrads::zeros_like(&store);
        // Awkward values: subnormal, negative zero, an irrational fraction.
        grads.accumulate(
            a.index(),
            &Array::from_vec(1, 3, vec![1.0e-41, -0.0, 1.0 / 3.0]),
        );

        let text = grads.to_json().to_string();
        let mut back = ParamGrads::from_json(&fewner_util::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.store_id(), 0);
        back.retag(grads.store_id());
        assert_eq!(back.store_id(), grads.store_id());
        assert_eq!(back.len(), grads.len());
        assert!(back.get_at(1).is_none());
        let bits = |g: &ParamGrads| -> Vec<u32> {
            g.get_at(0)
                .unwrap()
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect()
        };
        assert_eq!(
            bits(&back),
            bits(&grads),
            "f32 payload must survive bitwise"
        );
    }

    // ---- quantization ----------------------------------------------------

    fn awkward_array() -> Array {
        // Values chosen to stress every f16/i8 edge: subnormals in both
        // formats, negative zero, exact halves (tie-to-even), magnitudes
        // past f16 range, and ordinary weights.
        Array::from_vec(
            4,
            4,
            vec![
                0.0,
                -0.0,
                1.0,
                -1.0,
                0.333_333_34,
                -0.000_061_035_156, // f16 smallest normal
                5.960_464_5e-8,     // f16 smallest subnormal
                1.0e-41,            // f32 subnormal, rounds to zero in f16
                65504.0,            // f16 max
                65520.0,            // rounds to f16 inf
                -70000.0,
                2.5,
                0.100_000_024,
                -0.299_999_95,
                127.0,
                -127.5,
            ],
        )
    }

    fn random_array(rng: &mut fewner_util::Rng, rows: usize, cols: usize) -> Array {
        Array::uniform(rows, cols, -3.0, 3.0, rng)
    }

    #[test]
    fn f16_conversion_matches_known_bit_patterns() {
        let cases: &[(f32, u16)] = &[
            (0.0, 0x0000),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (65504.0, 0x7bff),
            (65520.0, 0x7c00), // overflow → inf
            (f32::INFINITY, 0x7c00),
            (f32::NEG_INFINITY, 0xfc00),
            (6.103_515_6e-5, 0x0400), // smallest normal
            (5.960_464_5e-8, 0x0001), // smallest subnormal
            (2.980_232_2e-8, 0x0000), // half of it: ties to even → 0
            (1.0e-41, 0x0000),
            (0.5, 0x3800),
            (0.099_975_586, 0x2e66), // 0.1 rounds down in f16
        ];
        for &(x, want) in cases {
            let got = f32_to_f16_bits(x);
            // 0.1 itself rounds to the nearest representable; check via
            // decode instead of hardcoding for the inexact case.
            if x == 0.099_975_586 {
                assert_eq!(f16_bits_to_f32(got), x, "f16 value must decode exactly");
            }
            if x != 0.099_975_586 {
                assert_eq!(got, want, "f32_to_f16_bits({x})");
            }
        }
        assert_eq!(f32_to_f16_bits(f32::NAN), 0x7e00, "canonical NaN");
        assert!(f16_bits_to_f32(0x7e00).is_nan());
    }

    #[test]
    fn f16_decode_encode_is_identity_on_all_non_nan_half_values() {
        // Exhaustive over the entire f16 space: decode is exact, so
        // re-encoding must give back the same bits for every non-NaN value.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let mant = h & 0x03ff;
            if exp == 0x1f && mant != 0 {
                continue; // NaNs canonicalise; checked separately above
            }
            assert_eq!(f32_to_f16_bits(f16_bits_to_f32(h)), h, "half bits {h:#06x}");
        }
    }

    #[test]
    fn quantize_encode_decode_encode_is_a_fixed_point() {
        let mut rng = fewner_util::Rng::new(42);
        for format in [WeightFormat::F16, WeightFormat::I8] {
            for a in [awkward_array(), random_array(&mut rng, 7, 13)] {
                // NaN/inf inputs are excluded for i8 (the absmax guard);
                // use a finite copy for both formats to share the loop.
                let finite = a.map(|x| if x.is_finite() { x } else { 0.0 });
                let q1 = QuantArray::quantize(&finite, format);
                let d1 = q1.dequantize();
                let q2 = QuantArray::quantize(&d1, format);
                assert_eq!(q1, q2, "{} encode∘decode must be idempotent", format.name());
                let d2 = q2.dequantize();
                let bits = |a: &Array| a.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&d1), bits(&d2), "decoded values drifted");
            }
        }
    }

    #[test]
    fn i8_scales_are_powers_of_two_and_dequant_is_exact() {
        let mut rng = fewner_util::Rng::new(7);
        let a = random_array(&mut rng, 5, 9);
        let q = QuantArray::quantize(&a, WeightFormat::I8);
        let QuantArray::I8 {
            scales,
            values,
            cols,
            ..
        } = &q
        else {
            panic!("expected i8 payload");
        };
        for (r, &s) in scales.iter().enumerate() {
            assert!(
                s > 0.0 && s.to_bits() & 0x007f_ffff == 0,
                "scale {s} not 2^k"
            );
            // Exactness: q · s recomputed in f64 matches the f32 product.
            for &v in &values[r * cols..(r + 1) * cols] {
                let exact = (v as f64) * (s as f64);
                assert_eq!(exact as f32, v as f32 * s);
            }
            // The row's absmax must actually be representable: max |q| near 127.
            let maxq = values[r * cols..(r + 1) * cols]
                .iter()
                .map(|v| v.unsigned_abs())
                .max()
                .unwrap();
            assert!(maxq >= 64, "scale too coarse: max|q| = {maxq}");
        }
    }

    #[test]
    fn i8_quantize_handles_all_zero_rows() {
        let a = Array::from_vec(3, 2, vec![0.0, -0.0, 1.5, -2.0, 0.0, 0.0]);
        let q = QuantArray::quantize(&a, WeightFormat::I8);
        let QuantArray::I8 { scales, values, .. } = &q else {
            panic!("expected i8 payload");
        };
        assert_eq!(scales[0], 0.0);
        assert_eq!(scales[2], 0.0);
        assert!(scales[1] > 0.0);
        assert_eq!(&values[0..2], &[0, 0]);
        assert_eq!(&values[4..6], &[0, 0]);
        let d = q.dequantize();
        assert_eq!(d.row(0), &[0.0, 0.0]);
        assert_eq!(d.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn quantized_params_json_roundtrip_is_bitwise() {
        let mut rng = fewner_util::Rng::new(3);
        let saved = SavedParams {
            entries: vec![
                ("enc.w".into(), random_array(&mut rng, 6, 4)),
                (
                    "crf.trans".into(),
                    awkward_array().map(|x| if x.is_finite() { x } else { 0.0 }),
                ),
                ("zeros".into(), Array::zeros(2, 3)),
            ],
        };
        for format in [WeightFormat::F16, WeightFormat::I8] {
            let q = QuantizedParams::quantize(&saved, format);
            let text = q.to_json().to_string();
            let back = QuantizedParams::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, q, "{} JSON round-trip", format.name());
        }
    }

    #[test]
    fn quantized_params_survive_the_durable_layer() {
        let mut rng = fewner_util::Rng::new(11);
        let saved = SavedParams {
            entries: vec![("w".into(), random_array(&mut rng, 8, 8))],
        };
        let q = QuantizedParams::quantize(&saved, WeightFormat::I8);
        let dir = std::env::temp_dir().join(format!("fewner-quant-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("theta.i8.json");
        fewner_util::durable::write_atomic(&path, q.to_json().to_string().as_bytes()).unwrap();
        let text = fewner_util::durable::read_verified_string(&path).unwrap();
        let back = QuantizedParams::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, q, "FEWNERD1 round-trip must be lossless");
        let bits = |s: &SavedParams| {
            s.entries[0]
                .1
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&back.dequantize()), bits(&q.dequantize()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantize_all_matches_checkpoint_decode() {
        let mut rng = fewner_util::Rng::new(5);
        let mut store = ParamStore::new();
        store.add("a", random_array(&mut rng, 4, 6));
        store.add("b", random_array(&mut rng, 1, 9));
        let via_file = QuantizedParams::quantize(&store.to_saved(), WeightFormat::F16).dequantize();
        store.quantize_all(WeightFormat::F16);
        let in_mem = store.to_saved();
        for ((n1, v1), (n2, v2)) in via_file.entries.iter().zip(&in_mem.entries) {
            assert_eq!(n1, n2);
            let bits = |a: &Array| a.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(v1), bits(v2), "in-memory and file paths must agree");
        }
        // F32 is the identity.
        let before = store.to_saved();
        store.quantize_all(WeightFormat::F32);
        assert_eq!(
            before.to_json().to_string(),
            store.to_saved().to_json().to_string()
        );
    }

    #[test]
    fn weight_format_parses_cli_names() {
        assert_eq!("f32".parse::<WeightFormat>().unwrap(), WeightFormat::F32);
        assert_eq!("f16".parse::<WeightFormat>().unwrap(), WeightFormat::F16);
        assert_eq!("i8".parse::<WeightFormat>().unwrap(), WeightFormat::I8);
        assert!("fp8".parse::<WeightFormat>().is_err());
        for f in [WeightFormat::F32, WeightFormat::F16, WeightFormat::I8] {
            assert_eq!(f.name().parse::<WeightFormat>().unwrap(), f);
        }
    }
}
