//! Dense 2-D `f32` arrays.
//!
//! Every tensor in the reproduction is a row-major matrix. Sequence models
//! process one sentence at a time, so the shapes that occur are small:
//! `[L, D]` token features, `[V, D]` embedding tables, `[T, T]` CRF
//! transitions, `[1, 1]` losses. Restricting to two dimensions keeps the
//! autodiff engine simple and auditable without losing any expressiveness the
//! paper's models need.
//!
//! [`Array`] is the *value* type; the computation graph in
//! [`crate::graph`] wraps it with gradient bookkeeping.

use fewner_util::{Error, Result, Rng};
use fewner_util::{FromJson, Json, ToJson};

/// A dense, row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl ToJson for Array {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("rows".into(), Json::from(self.rows)),
            ("cols".into(), Json::from(self.cols)),
            (
                "data".into(),
                Json::Arr(self.data.iter().map(|&x| Json::from(x)).collect()),
            ),
        ])
    }
}

impl FromJson for Array {
    fn from_json(json: &Json) -> Result<Array> {
        let rows = json.field("rows")?.as_usize()?;
        let cols = json.field("cols")?.as_usize()?;
        let data = json
            .field("data")?
            .as_arr()?
            .iter()
            .map(Json::as_f32)
            .collect::<Result<Vec<f32>>>()?;
        if data.len() != rows * cols {
            return Err(Error::Serde(format!(
                "Array JSON holds {} values for shape [{rows}, {cols}]",
                data.len()
            )));
        }
        Ok(Array { rows, cols, data })
    }
}

impl Array {
    /// Creates an array from raw parts. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Array {
        assert_eq!(
            data.len(),
            rows * cols,
            "Array::from_vec: {} values for shape [{rows}, {cols}]",
            data.len()
        );
        Array { rows, cols, data }
    }

    /// All-zeros array.
    pub fn zeros(rows: usize, cols: usize) -> Array {
        Array {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Array filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Array {
        Array {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// 1×1 array holding a scalar.
    pub fn scalar(value: f32) -> Array {
        Array::full(1, 1, value)
    }

    /// Uniform random entries in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Array {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Array { rows, cols, data }
    }

    /// Gaussian random entries with the given standard deviation.
    pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Array {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Array { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialisation: U(±√(6/(fan_in+fan_out))).
    pub fn xavier(rows: usize, cols: usize, rng: &mut Rng) -> Array {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Array::uniform(rows, cols, -bound, bound, rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing storage (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value of a 1×1 array.
    ///
    /// # Panics
    /// Panics when the array is not 1×1.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "scalar_value on non-scalar [{}, {}]",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Array) -> Result<Array> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                op: "matmul",
                detail: format!(
                    "[{}, {}] x [{}, {}]",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Array::zeros(self.rows, rhs.cols);
        matmul_into(self, rhs, &mut out, false);
        Ok(out)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Array {
        let mut out = Array::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies `f` elementwise, returning a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Array {
        Array {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f32, other: &Array) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha`.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Index of the maximum element of a row.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Fills the array with zeros, keeping its allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Consumes the array, returning its backing storage for reuse (the
    /// inference arena's buffer pool).
    pub(crate) fn take_data(self) -> Vec<f32> {
        self.data
    }
}

/// `out += a · b` (or `out = a · b` when `overwrite` is false means accumulate).
///
/// i–k–j loop order so the inner loop streams contiguously over both `b` and
/// `out`, which the compiler auto-vectorises; at the matrix sizes used by the
/// models here this is within a small factor of a tuned BLAS and avoids any
/// unsafe code.
pub(crate) fn matmul_into(a: &Array, b: &Array, out: &mut Array, accumulate: bool) {
    debug_assert_eq!(a.cols, b.rows);
    debug_assert_eq!((out.rows, out.cols), (a.rows, b.cols));
    if !accumulate {
        out.fill_zero();
    }
    let n = b.cols;
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b.data[k * n..(k + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
}

/// `out += aᵀ · b` without materialising the transpose.
pub(crate) fn matmul_at_b(a: &Array, b: &Array, out: &mut Array) {
    debug_assert_eq!(a.rows, b.rows);
    debug_assert_eq!((out.rows, out.cols), (a.cols, b.cols));
    let n = b.cols;
    for r in 0..a.rows {
        let a_row = a.row(r);
        let b_row = b.row(r);
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `out += a · bᵀ` without materialising the transpose.
pub(crate) fn matmul_a_bt(a: &Array, b: &Array, out: &mut Array) {
    debug_assert_eq!(a.cols, b.cols);
    debug_assert_eq!((out.rows, out.cols), (a.rows, b.rows));
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *o += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_example() {
        let a = Array::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Array::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Array::zeros(2, 3);
        let b = Array::zeros(4, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(Error::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = Rng::new(5);
        let a = Array::uniform(3, 7, -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), a.at(1, 2));
    }

    #[test]
    fn at_b_and_a_bt_match_explicit_transpose() {
        let mut rng = Rng::new(6);
        let a = Array::uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Array::uniform(4, 5, -1.0, 1.0, &mut rng);
        let mut out = Array::zeros(3, 5);
        matmul_at_b(&a, &b, &mut out);
        let expected = a.transpose().matmul(&b).unwrap();
        for (x, y) in out.data().iter().zip(expected.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let c = Array::uniform(4, 3, -1.0, 1.0, &mut rng);
        let d = Array::uniform(5, 3, -1.0, 1.0, &mut rng);
        let mut out2 = Array::zeros(4, 5);
        matmul_a_bt(&c, &d, &mut out2);
        let expected2 = c.matmul(&d.transpose()).unwrap();
        for (x, y) in out2.data().iter().zip(expected2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Rng::new(8);
        let a = Array::xavier(10, 20, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Array::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Array::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0, 18.0]);
        a.scale_in_place(2.0);
        assert_eq!(a.data(), &[12.0, 24.0, 36.0]);
    }

    #[test]
    fn argmax_row_picks_first_max() {
        let a = Array::from_vec(2, 3, vec![0.0, 5.0, 5.0, -1.0, -2.0, -3.0]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 0);
    }

    #[test]
    fn json_round_trip() {
        let mut rng = Rng::new(10);
        let a = Array::uniform(3, 4, -2.0, 2.0, &mut rng);
        let json = a.to_json().to_string();
        let back = Array::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut a = Array::zeros(2, 2);
        assert!(a.all_finite());
        *a.at_mut(0, 1) = f32::NAN;
        assert!(!a.all_finite());
        *a.at_mut(0, 1) = f32::INFINITY;
        assert!(!a.all_finite());
    }
}
