//! The executor abstraction: one op vocabulary, two evaluation strategies.
//!
//! Model code is written once against the [`Exec`] trait and runs under two
//! executors:
//!
//! * [`crate::Graph`] — the tape-recording autodiff executor. Every op is
//!   evaluated eagerly *and* recorded so [`crate::Graph::backward`] can run a
//!   reverse sweep. Used wherever gradients are needed: meta-training and the
//!   inner-loop φ adaptation.
//! * [`crate::Infer`] — the gradient-free executor. The same ops are
//!   evaluated eagerly into a reusable scratch-buffer arena with no `Op`
//!   nodes and no gradient bookkeeping. Used for the post-adaptation query
//!   sweep, Viterbi decode and the `fewner predict` serving path.
//!
//! Both executors share the numeric kernels in [`crate::kernels`], so their
//! forward values are **bitwise identical** — a property the test suite pins
//! down. The executor also owns the train/eval distinction ([`ExecMode`]):
//! [`Exec::dropout`] is the identity unless the executor is in
//! [`ExecMode::Train`], which removes the error-prone `train: bool` flag
//! from every model signature.

use std::sync::Arc;

use fewner_util::Rng;

use crate::array::Array;
use crate::params::{ParamId, ParamStore};

/// Handle to a value owned by an executor.
///
/// A `Var` is only meaningful for the executor that created it; indices are
/// positions in that executor's node list (tape) or slot arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Whether stochastic regularisation (dropout) is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Training: dropout masks are sampled and applied.
    Train,
    /// Evaluation/inference: dropout is the identity.
    Eval,
}

/// The op vocabulary shared by the tape ([`crate::Graph`]) and the
/// gradient-free arena ([`crate::Infer`]).
///
/// Required methods mirror the tape's builder surface one-to-one; provided
/// methods are pure compositions and therefore behave identically under any
/// implementation. Shape errors panic with a descriptive message, exactly as
/// on the tape (model architectures fix shapes at construction time).
pub trait Exec {
    /// Inserts a constant (no gradient will ever flow into it).
    fn constant(&self, value: Array) -> Var;
    /// Binds a parameter from a store; repeated binds return the same handle.
    fn param(&self, store: &ParamStore, id: ParamId) -> Var;
    /// Marks a store's parameters as gradient-free. A no-op on executors
    /// that never compute gradients.
    fn freeze(&self, store: &ParamStore);
    /// The current value of a node (cheap `Arc` clone).
    fn value(&self, v: Var) -> Arc<Array>;
    /// Shape of a node's value.
    fn shape(&self, v: Var) -> (usize, usize);
    /// Whether dropout is active on this executor.
    fn mode(&self) -> ExecMode;

    /// Elementwise (broadcasting) addition.
    fn add(&self, a: Var, b: Var) -> Var;
    /// Elementwise (broadcasting) subtraction.
    fn sub(&self, a: Var, b: Var) -> Var;
    /// Elementwise (broadcasting) multiplication.
    fn mul(&self, a: Var, b: Var) -> Var;
    /// Adds a scalar to every element.
    fn add_scalar(&self, a: Var, c: f32) -> Var;
    /// Multiplies every element by a scalar.
    fn mul_scalar(&self, a: Var, c: f32) -> Var;
    /// Matrix product.
    fn matmul(&self, a: Var, b: Var) -> Var;
    /// Transpose.
    fn transpose(&self, a: Var) -> Var;
    /// Logistic sigmoid.
    fn sigmoid(&self, a: Var) -> Var;
    /// Hyperbolic tangent.
    fn tanh(&self, a: Var) -> Var;
    /// Rectified linear unit.
    fn relu(&self, a: Var) -> Var;
    /// Concatenates along columns: `[r, c1] ++ [r, c2] … → [r, Σci]`.
    fn concat_cols(&self, parts: &[Var]) -> Var;
    /// Stacks along rows: `[r1, c] ++ [r2, c] … → [Σri, c]`.
    fn concat_rows(&self, parts: &[Var]) -> Var;
    /// Extracts row `i` as a `[1, c]` node.
    fn row(&self, a: Var, i: usize) -> Var;
    /// Extracts columns `start..start+len`.
    fn slice_cols(&self, a: Var, start: usize, len: usize) -> Var;
    /// Sum of all elements → `[1, 1]`.
    fn sum_all(&self, a: Var) -> Var;
    /// Mean of all elements → `[1, 1]`.
    fn mean_all(&self, a: Var) -> Var;
    /// Column sums: `[r, c] → [1, c]`.
    fn col_sum(&self, a: Var) -> Var;
    /// Row sums: `[r, c] → [r, 1]`.
    fn row_sum(&self, a: Var) -> Var;
    /// Column-wise max: `[r, c] → [1, c]` (CNN max-over-time pooling).
    fn col_max(&self, a: Var) -> Var;
    /// Column-wise log-sum-exp: `[r, c] → [1, c]` (CRF forward recursion).
    fn col_lse(&self, a: Var) -> Var;
    /// Log-sum-exp over all elements → `[1, 1]` (CRF partition function).
    fn lse_all(&self, a: Var) -> Var;
    /// Row-wise log-softmax.
    fn log_softmax_rows(&self, a: Var) -> Var;
    /// Row-wise softmax.
    fn softmax_rows(&self, a: Var) -> Var;
    /// Sliding-window unfold (im2col for 1-D convolution).
    fn unfold(&self, a: Var, k: usize) -> Var;
    /// Gathers rows by index (embedding lookup): `[V, D] → [len(idx), D]`.
    fn gather_rows(&self, a: Var, indices: &[usize]) -> Var;
    /// Reinterprets the (row-major) data as a `rows × cols` matrix.
    fn reshape(&self, a: Var, rows: usize, cols: usize) -> Var;
    /// Sum of selected entries → `[1, 1]` (CRF gold-path scoring).
    fn gather_sum(&self, a: Var, coords: &[(usize, usize)]) -> Var;

    /// Inserts a 1×1 constant.
    fn scalar(&self, value: f32) -> Var {
        self.constant(Array::scalar(value))
    }

    /// Negation.
    fn neg(&self, a: Var) -> Var {
        self.mul_scalar(a, -1.0)
    }

    /// `1 − a`, elementwise (GRU update gate complement).
    fn one_minus(&self, a: Var) -> Var {
        self.add_scalar(self.mul_scalar(a, -1.0), 1.0)
    }

    /// FiLM conditioning (paper Eq. 8): `γ ⊙ h + η` with `γ`, `η` `[1, D]`
    /// rows broadcast over `h`'s rows.
    fn film(&self, h: Var, gamma: Var, eta: Var) -> Var {
        self.add(self.mul(h, gamma), eta)
    }

    /// Mean over rows: `[r, c] → [1, c]` (prototype computation).
    fn row_mean(&self, a: Var) -> Var {
        let rows = self.shape(a).0;
        self.mul_scalar(self.col_sum(a), 1.0 / rows as f32)
    }

    /// Inverted dropout. Identity unless the executor is in
    /// [`ExecMode::Train`] and `rate > 0`; the mask consumes one `rng` draw
    /// per element, so draw order is identical on every executor.
    fn dropout(&self, a: Var, rate: f32, rng: &mut Rng) -> Var {
        if self.mode() != ExecMode::Train || rate <= 0.0 {
            return a;
        }
        assert!(rate < 1.0, "dropout rate must be < 1");
        let keep = 1.0 - rate;
        let (r, c) = self.shape(a);
        let mut mask = Array::zeros(r, c);
        for v in mask.data_mut() {
            *v = if rng.chance(keep as f64) {
                1.0 / keep
            } else {
                0.0
            };
        }
        let m = self.constant(mask);
        self.mul(a, m)
    }
}
