//! Reusable neural layers built on the graph.
//!
//! Each layer registers its parameters in a [`ParamStore`] at construction
//! time under a caller-supplied name prefix, and `apply` rebuilds its piece
//! of the computation graph for every forward pass (define-by-run). The
//! NER-specific assemblies (backbone, CRF, baselines) live in
//! `fewner-models`; this module holds only the generic building blocks:
//! [`Linear`], [`Embedding`], [`GruCell`], [`BiGru`] and [`Conv1d`].

use fewner_util::Rng;

use crate::array::Array;
use crate::exec::{Exec, Var};
use crate::params::{ParamId, ParamStore};

/// Fully-connected layer `y = x·W (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a weight `[in_dim, out_dim]` (Xavier) and optional zero bias.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Linear {
        let w = store.add(format!("{prefix}.w"), Array::xavier(in_dim, out_dim, rng));
        let b = bias.then(|| store.add(format!("{prefix}.b"), Array::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `[L, in] → [L, out]`.
    pub fn apply<E: Exec>(&self, g: &E, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(g.shape(x).1, self.in_dim, "Linear input dim");
        let w = g.param(store, self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => g.add(y, g.param(store, b)),
            None => y,
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter id.
    pub fn weight(&self) -> ParamId {
        self.w
    }
}

/// Token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    dim: usize,
}

impl Embedding {
    /// Registers a `[vocab, dim]` table initialised from `init`.
    pub fn from_array(store: &mut ParamStore, prefix: &str, init: Array) -> Embedding {
        let dim = init.cols();
        let table = store.add(format!("{prefix}.table"), init);
        Embedding { table, dim }
    }

    /// Registers a `[vocab, dim]` table with small uniform initialisation.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        vocab: usize,
        dim: usize,
        rng: &mut Rng,
    ) -> Embedding {
        Self::from_array(store, prefix, Array::uniform(vocab, dim, -0.1, 0.1, rng))
    }

    /// Looks up `ids` → `[len(ids), dim]`.
    pub fn apply<E: Exec>(&self, g: &E, store: &ParamStore, ids: &[usize]) -> Var {
        let table = g.param(store, self.table);
        g.gather_rows(table, ids)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table parameter id.
    pub fn table(&self) -> ParamId {
        self.table
    }
}

/// A single gated recurrent unit cell (Cho et al.).
///
/// Gate layout in the fused projections is `[reset | update | candidate]`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    hidden: usize,
}

impl GruCell {
    /// Registers `W_x [in, 3H]`, `W_h [H, 3H]` and a zero bias `[1, 3H]`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> GruCell {
        GruCell {
            wx: store.add(
                format!("{prefix}.wx"),
                Array::xavier(in_dim, 3 * hidden, rng),
            ),
            wh: store.add(
                format!("{prefix}.wh"),
                Array::xavier(hidden, 3 * hidden, rng),
            ),
            b: store.add(format!("{prefix}.b"), Array::zeros(1, 3 * hidden)),
            hidden,
        }
    }

    /// One step: `x [1, in]`, `h [1, H]` → `h' [1, H]`.
    pub fn step<E: Exec>(&self, g: &E, store: &ParamStore, x: Var, h: Var) -> Var {
        let hdim = self.hidden;
        let sx = g.add(g.matmul(x, g.param(store, self.wx)), g.param(store, self.b));
        let sh = g.matmul(h, g.param(store, self.wh));
        let r = g.sigmoid(g.add(g.slice_cols(sx, 0, hdim), g.slice_cols(sh, 0, hdim)));
        let z = g.sigmoid(g.add(g.slice_cols(sx, hdim, hdim), g.slice_cols(sh, hdim, hdim)));
        let n = g.tanh(g.add(
            g.slice_cols(sx, 2 * hdim, hdim),
            g.mul(r, g.slice_cols(sh, 2 * hdim, hdim)),
        ));
        // h' = (1 - z) ⊙ n + z ⊙ h
        g.add(g.mul(g.one_minus(z), n), g.mul(z, h))
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// Bidirectional GRU encoder: `[L, in] → [L, 2H]`.
#[derive(Debug, Clone)]
pub struct BiGru {
    fwd: GruCell,
    bwd: GruCell,
    hidden: usize,
}

impl BiGru {
    /// Registers forward and backward cells.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> BiGru {
        BiGru {
            fwd: GruCell::new(store, &format!("{prefix}.fwd"), in_dim, hidden, rng),
            bwd: GruCell::new(store, &format!("{prefix}.bwd"), in_dim, hidden, rng),
            hidden,
        }
    }

    /// Encodes a sequence; output row `t` is `[h⃗_t ; h⃖_t]`.
    pub fn apply<E: Exec>(&self, g: &E, store: &ParamStore, x: Var) -> Var {
        let len = g.shape(x).0;
        assert!(len > 0, "BiGru over empty sequence");
        let zero = g.constant(Array::zeros(1, self.hidden));

        let mut fwd_states = Vec::with_capacity(len);
        let mut h = zero;
        for t in 0..len {
            h = self.fwd.step(g, store, g.row(x, t), h);
            fwd_states.push(h);
        }
        let mut bwd_states = vec![zero; len];
        let mut hb = zero;
        for t in (0..len).rev() {
            hb = self.bwd.step(g, store, g.row(x, t), hb);
            bwd_states[t] = hb;
        }
        let rows: Vec<Var> = (0..len)
            .map(|t| g.concat_cols(&[fwd_states[t], bwd_states[t]]))
            .collect();
        g.concat_rows(&rows)
    }

    /// Output feature dimension (`2H`).
    pub fn out_dim(&self) -> usize {
        2 * self.hidden
    }
}

/// A long short-term memory cell (Hochreiter & Schmidhuber).
///
/// Gate layout in the fused projections is `[input | forget | cell | output]`.
/// The forget-gate bias starts at 1.0 (the standard trick that lets
/// gradients flow at initialisation).
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    hidden: usize,
}

impl LstmCell {
    /// Registers `W_x [in, 4H]`, `W_h [H, 4H]` and the bias `[1, 4H]`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> LstmCell {
        let mut bias = Array::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            *bias.at_mut(0, j) = 1.0;
        }
        LstmCell {
            wx: store.add(
                format!("{prefix}.wx"),
                Array::xavier(in_dim, 4 * hidden, rng),
            ),
            wh: store.add(
                format!("{prefix}.wh"),
                Array::xavier(hidden, 4 * hidden, rng),
            ),
            b: store.add(format!("{prefix}.b"), bias),
            hidden,
        }
    }

    /// One step: `x [1, in]`, state `(h, c)` → `(h', c')`.
    pub fn step<E: Exec>(&self, g: &E, store: &ParamStore, x: Var, h: Var, c: Var) -> (Var, Var) {
        let hd = self.hidden;
        let s = g.add(
            g.add(
                g.matmul(x, g.param(store, self.wx)),
                g.matmul(h, g.param(store, self.wh)),
            ),
            g.param(store, self.b),
        );
        let i = g.sigmoid(g.slice_cols(s, 0, hd));
        let f = g.sigmoid(g.slice_cols(s, hd, hd));
        let cand = g.tanh(g.slice_cols(s, 2 * hd, hd));
        let o = g.sigmoid(g.slice_cols(s, 3 * hd, hd));
        let c_next = g.add(g.mul(f, c), g.mul(i, cand));
        let h_next = g.mul(o, g.tanh(c_next));
        (h_next, c_next)
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

/// Bidirectional LSTM encoder: `[L, in] → [L, 2H]`.
///
/// The paper's backbone uses a BiGRU for cost reasons (§3.2.2) but stresses
/// that "our approach is model-agnostic"; this encoder makes that claim
/// testable (`BackboneConfig`'s `EncoderKind`).
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: LstmCell,
    bwd: LstmCell,
    hidden: usize,
}

impl BiLstm {
    /// Registers forward and backward cells.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> BiLstm {
        BiLstm {
            fwd: LstmCell::new(store, &format!("{prefix}.fwd"), in_dim, hidden, rng),
            bwd: LstmCell::new(store, &format!("{prefix}.bwd"), in_dim, hidden, rng),
            hidden,
        }
    }

    /// Encodes a sequence; output row `t` is `[h⃗_t ; h⃖_t]`.
    pub fn apply<E: Exec>(&self, g: &E, store: &ParamStore, x: Var) -> Var {
        let len = g.shape(x).0;
        assert!(len > 0, "BiLstm over empty sequence");
        let zero = g.constant(Array::zeros(1, self.hidden));

        let mut fwd_states = Vec::with_capacity(len);
        let (mut h, mut c) = (zero, zero);
        for t in 0..len {
            let (h2, c2) = self.fwd.step(g, store, g.row(x, t), h, c);
            h = h2;
            c = c2;
            fwd_states.push(h);
        }
        let mut bwd_states = vec![zero; len];
        let (mut hb, mut cb) = (zero, zero);
        for t in (0..len).rev() {
            let (h2, c2) = self.bwd.step(g, store, g.row(x, t), hb, cb);
            hb = h2;
            cb = c2;
            bwd_states[t] = hb;
        }
        let rows: Vec<Var> = (0..len)
            .map(|t| g.concat_cols(&[fwd_states[t], bwd_states[t]]))
            .collect();
        g.concat_rows(&rows)
    }

    /// Output feature dimension (`2H`).
    pub fn out_dim(&self) -> usize {
        2 * self.hidden
    }
}

/// 1-D convolution over rows with max-over-time pooling.
///
/// Used per word over its character embeddings: input `[W, D]`, one filter
/// bank per window width, output `[1, Σ filters]`. This is the paper's
/// character-level CNN (filters `[2, 3, 4]`, §4.1.3).
#[derive(Debug, Clone)]
pub struct Conv1d {
    banks: Vec<(usize, Linear)>,
    out_dim: usize,
}

impl Conv1d {
    /// Registers one filter bank `[k·in_dim → filters]` per width in `widths`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        in_dim: usize,
        widths: &[usize],
        filters_per_width: usize,
        rng: &mut Rng,
    ) -> Conv1d {
        let banks = widths
            .iter()
            .map(|&k| {
                let lin = Linear::new(
                    store,
                    &format!("{prefix}.w{k}"),
                    k * in_dim,
                    filters_per_width,
                    true,
                    rng,
                );
                (k, lin)
            })
            .collect::<Vec<_>>();
        Conv1d {
            out_dim: banks.len() * filters_per_width,
            banks,
        }
    }

    /// Largest window width (callers must pad inputs to at least this many rows).
    pub fn max_width(&self) -> usize {
        self.banks.iter().map(|(k, _)| *k).max().unwrap_or(1)
    }

    /// `[W, in] → [1, out_dim]`; `W` must be ≥ [`Conv1d::max_width`].
    pub fn apply<E: Exec>(&self, g: &E, store: &ParamStore, x: Var) -> Var {
        let rows = g.shape(x).0;
        assert!(
            rows >= self.max_width(),
            "Conv1d input of {rows} rows shorter than widest filter {}",
            self.max_width()
        );
        let pooled: Vec<Var> = self
            .banks
            .iter()
            .map(|(k, lin)| {
                let windows = g.unfold(x, *k);
                let feats = g.relu(lin.apply(g, store, windows));
                g.col_max(feats)
            })
            .collect();
        g.concat_cols(&pooled)
    }

    /// Total output features.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn setup() -> (ParamStore, Rng) {
        (ParamStore::new(), Rng::new(77))
    }

    #[test]
    fn linear_shapes_and_bias() {
        let (mut store, mut rng) = setup();
        let lin = Linear::new(&mut store, "l", 4, 3, true, &mut rng);
        let g = Graph::new();
        let x = g.constant(Array::zeros(5, 4));
        let y = lin.apply(&g, &store, x);
        assert_eq!(g.shape(y), (5, 3));
        // Zero input, zero bias → zero output.
        assert!(g.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn embedding_lookup_shapes() {
        let (mut store, mut rng) = setup();
        let emb = Embedding::new(&mut store, "e", 10, 6, &mut rng);
        let g = Graph::new();
        let x = emb.apply(&g, &store, &[1, 1, 9]);
        assert_eq!(g.shape(x), (3, 6));
        let v = g.value(x);
        assert_eq!(v.row(0), v.row(1), "same id, same row");
    }

    #[test]
    fn gru_step_bounded_and_stateful() {
        let (mut store, mut rng) = setup();
        let cell = GruCell::new(&mut store, "gru", 3, 5, &mut rng);
        let g = Graph::new();
        let x = g.constant(Array::uniform(1, 3, -1.0, 1.0, &mut rng));
        let h0 = g.constant(Array::zeros(1, 5));
        let h1 = cell.step(&g, &store, x, h0);
        assert_eq!(g.shape(h1), (1, 5));
        // GRU hidden state is a convex-ish combination of tanh outputs:
        // all values must lie in (-1, 1).
        assert!(g.value(h1).data().iter().all(|v| v.abs() < 1.0));
        let h2 = cell.step(&g, &store, x, h1);
        assert_ne!(g.value(h1).data(), g.value(h2).data());
    }

    #[test]
    fn bigru_first_row_sees_whole_sequence() {
        let (mut store, mut rng) = setup();
        let enc = BiGru::new(&mut store, "enc", 2, 4, &mut rng);
        // Two inputs differing only in their *last* row: the backward pass
        // must make row 0 of the output differ.
        let a = Array::zeros(3, 2);
        let mut b = Array::zeros(3, 2);
        *b.at_mut(2, 0) = 1.0;
        let g = Graph::new();
        let ya = enc.apply(&g, &store, g.constant(a));
        let yb = enc.apply(&g, &store, g.constant(b));
        assert_eq!(g.shape(ya), (3, 8));
        assert_ne!(g.value(ya).row(0), g.value(yb).row(0));
    }

    #[test]
    fn lstm_step_bounded_and_stateful() {
        let (mut store, mut rng) = setup();
        let cell = LstmCell::new(&mut store, "lstm", 3, 5, &mut rng);
        let g = Graph::new();
        let x = g.constant(Array::uniform(1, 3, -1.0, 1.0, &mut rng));
        let h0 = g.constant(Array::zeros(1, 5));
        let c0 = g.constant(Array::zeros(1, 5));
        let (h1, c1) = cell.step(&g, &store, x, h0, c0);
        assert_eq!(g.shape(h1), (1, 5));
        assert_eq!(g.shape(c1), (1, 5));
        assert!(g.value(h1).data().iter().all(|v| v.abs() < 1.0));
        let (h2, _) = cell.step(&g, &store, x, h1, c1);
        assert_ne!(g.value(h1).data(), g.value(h2).data());
    }

    #[test]
    fn lstm_forget_bias_initialised_to_one() {
        let (mut store, mut rng) = setup();
        let _cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        let b = store.get("lstm.b").unwrap();
        let bias = store.value(b);
        assert!(bias.row(0)[..4].iter().all(|&v| v == 0.0));
        assert!(bias.row(0)[4..8].iter().all(|&v| v == 1.0), "forget bias 1");
        assert!(bias.row(0)[8..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bilstm_first_row_sees_whole_sequence() {
        let (mut store, mut rng) = setup();
        let enc = BiLstm::new(&mut store, "enc", 2, 4, &mut rng);
        let a = Array::zeros(3, 2);
        let mut b = Array::zeros(3, 2);
        *b.at_mut(2, 0) = 1.0;
        let g = Graph::new();
        let ya = enc.apply(&g, &store, g.constant(a));
        let yb = enc.apply(&g, &store, g.constant(b));
        assert_eq!(g.shape(ya), (3, 8));
        assert_ne!(g.value(ya).row(0), g.value(yb).row(0));
    }

    #[test]
    fn conv1d_pooling_shapes() {
        let (mut store, mut rng) = setup();
        let conv = Conv1d::new(&mut store, "cnn", 4, &[2, 3], 6, &mut rng);
        assert_eq!(conv.out_dim(), 12);
        assert_eq!(conv.max_width(), 3);
        let g = Graph::new();
        let x = g.constant(Array::uniform(7, 4, -1.0, 1.0, &mut rng));
        let y = conv.apply(&g, &store, x);
        assert_eq!(g.shape(y), (1, 12));
    }

    #[test]
    fn conv1d_is_translation_sensitive_but_pooled() {
        let (mut store, mut rng) = setup();
        let conv = Conv1d::new(&mut store, "cnn", 2, &[2], 4, &mut rng);
        let g = Graph::new();
        // A distinctive bigram shifted within zero padding (kept interior so
        // both inputs produce the same multiset of width-2 windows) must
        // pool to identical features: max-over-time translation invariance.
        let mut early = Array::zeros(6, 2);
        *early.at_mut(1, 0) = 1.0;
        *early.at_mut(2, 1) = 1.0;
        let mut late = Array::zeros(6, 2);
        *late.at_mut(3, 0) = 1.0;
        *late.at_mut(4, 1) = 1.0;
        let ye = conv.apply(&g, &store, g.constant(early));
        let yl = conv.apply(&g, &store, g.constant(late));
        let (ve, vl) = (g.value(ye), g.value(yl));
        for (a, b) in ve.data().iter().zip(vl.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn gradients_flow_through_all_layers() {
        let (mut store, mut rng) = setup();
        let emb = Embedding::new(&mut store, "e", 8, 4, &mut rng);
        let conv = Conv1d::new(&mut store, "c", 4, &[2], 3, &mut rng);
        let enc = BiGru::new(&mut store, "g", 3, 4, &mut rng);
        let head = Linear::new(&mut store, "h", 8, 2, true, &mut rng);

        let g = Graph::new();
        let chars = emb.apply(&g, &store, &[1, 2, 3]);
        let word = conv.apply(&g, &store, chars);
        let seq = g.concat_rows(&[word, word, word]);
        let hidden = enc.apply(&g, &store, seq);
        let logits = head.apply(&g, &store, hidden);
        let loss = g.mean_all(g.mul(logits, logits));
        let grads = g.backward(loss).unwrap().for_store(&store);
        // Every layer's parameters must receive a gradient.
        let mut with_grad = 0;
        for i in 0..store.len() {
            if grads.get_at(i).is_some() {
                with_grad += 1;
            }
        }
        assert_eq!(with_grad, store.len(), "all params receive gradients");
    }
}
