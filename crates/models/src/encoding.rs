//! Token encoding shared by every model.
//!
//! Builds the word vocabulary (uncased, GloVe-style), the character
//! vocabulary (cased) and the synthetic pre-trained embedding table from an
//! experiment's corpora, and converts sentences into the id arrays the
//! models consume. Mirrors the paper's input pipeline (§4.1.3): pre-trained
//! word embeddings fine-tuned during training + character-level CNN
//! representations.

use std::collections::HashMap;

use fewner_corpus::Dataset;
use fewner_tensor::Array;
use fewner_text::embed::{build_table, EmbeddingSpec};
use fewner_text::Vocab;

/// A sentence converted to model inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSentence {
    /// Word ids (uncased vocabulary).
    pub word_ids: Vec<usize>,
    /// Character ids per token, right-padded to the char-CNN's widest filter.
    pub char_ids: Vec<Vec<usize>>,
}

impl EncodedSentence {
    /// Sentence length in tokens.
    pub fn len(&self) -> usize {
        self.word_ids.len()
    }

    /// True for a zero-token sentence.
    pub fn is_empty(&self) -> bool {
        self.word_ids.is_empty()
    }
}

/// Word + character vocabularies with the pre-trained embedding table.
#[derive(Debug, Clone)]
pub struct TokenEncoder {
    /// Uncased word vocabulary.
    pub words: Vocab,
    /// Cased character vocabulary.
    pub chars: Vocab,
    /// Pre-trained `[vocab, dim]` word embeddings (PAD row zero).
    pub pretrained: Array,
    /// Minimum character padding (widest CNN filter).
    pub min_chars: usize,
}

impl TokenEncoder {
    /// Builds the encoder over one or more corpora.
    ///
    /// Like a real pre-trained embedding table, the vocabulary covers every
    /// corpus involved in an experiment (source and target); what the
    /// *models* see of unseen words at test time is still limited — fresh
    /// generated names are not in any vocabulary and map to `UNK`, which is
    /// exactly the out-of-training-vocabulary pressure the paper's char-CNN
    /// ablation measures.
    pub fn build(datasets: &[&Dataset], spec: &EmbeddingSpec, min_chars: usize) -> TokenEncoder {
        let all_tokens = || {
            datasets
                .iter()
                .flat_map(|d| d.sentences.iter())
                .flat_map(|s| s.tokens.iter().map(String::as_str))
        };
        let words = Vocab::build(all_tokens(), 1, true);
        let chars = Vocab::build_chars(all_tokens());

        // Merge cluster maps across corpora; lowercase keys to match the
        // uncased word vocabulary. Case variants of one word ("IL-2" vs
        // "Il-2") can carry different clusters, and first-wins over a
        // HashMap's per-instance iteration order would let the merged entry
        // — and that word's pretrained embedding row — differ between
        // runs, so resolve collisions in sorted key order. The sorted view
        // is cached on the dataset: serving rebuilds used to re-collect and
        // re-sort the full map on every call.
        let mut clusters: HashMap<String, u64> = HashMap::new();
        for d in datasets {
            for (k, v) in d.sorted_clusters() {
                clusters.entry(k.to_lowercase()).or_insert(*v);
            }
        }
        let table = build_table(
            spec,
            words.len(),
            |i| words.token(i).to_string(),
            |i| clusters.get(words.token(i)).copied(),
        );
        let pretrained = Array::from_vec(words.len(), spec.dim, table);
        TokenEncoder {
            words,
            chars,
            pretrained,
            min_chars,
        }
    }

    /// Encodes a token sequence.
    pub fn encode(&self, tokens: &[String]) -> EncodedSentence {
        EncodedSentence {
            word_ids: tokens.iter().map(|t| self.words.id(t)).collect(),
            char_ids: tokens
                .iter()
                .map(|t| self.chars.encode_chars(t, self.min_chars))
                .collect(),
        }
    }

    /// Word-embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.pretrained.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::DatasetProfile;

    fn encoder() -> (Dataset, TokenEncoder) {
        let d = DatasetProfile::bionlp13cg().generate(0.01).unwrap();
        let spec = EmbeddingSpec {
            dim: 16,
            ..EmbeddingSpec::default()
        };
        let e = TokenEncoder::build(&[&d], &spec, 4);
        (d, e)
    }

    #[test]
    fn encode_shapes_and_padding() {
        let (d, e) = encoder();
        let s = &d.sentences[0];
        let enc = e.encode(&s.tokens);
        assert_eq!(enc.len(), s.len());
        for cs in &enc.char_ids {
            assert!(cs.len() >= 4);
        }
    }

    #[test]
    fn unknown_words_map_to_unk_but_chars_survive() {
        let (_, e) = encoder();
        let enc = e.encode(&["Qzxqzx".to_string()]);
        assert_eq!(enc.word_ids[0], fewner_text::vocab::UNK);
        // Characters that exist in the corpus alphabet stay informative.
        assert!(enc.char_ids[0].iter().any(|&c| c > 1));
    }

    #[test]
    fn pretrained_table_matches_vocab() {
        let (_, e) = encoder();
        assert_eq!(e.pretrained.rows(), e.words.len());
        assert_eq!(e.dim(), 16);
        // PAD row is zero.
        assert!(e.pretrained.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pretrained_table_is_identical_across_builds() {
        // Regression: the cluster merge lowercases keys, and case variants
        // of one word ("IL-2" vs "Il-2") can map to different clusters.
        // Resolving that collision by HashMap iteration order made one
        // embedding row — and every checkpoint trained from it — differ
        // from run to run. Two generations of the same profile hold
        // identical cluster *contents* in independently seeded HashMaps,
        // which is exactly the across-process situation.
        let d1 = DatasetProfile::genia().generate(0.03).unwrap();
        let mut lowered: HashMap<String, u64> = HashMap::new();
        let mut conflicting = 0usize;
        for (k, v) in d1.clusters() {
            if let Some(prev) = lowered.insert(k.to_lowercase(), *v) {
                if prev != *v {
                    conflicting += 1;
                }
            }
        }
        assert!(
            conflicting > 0,
            "fixture must contain a case-variant cluster conflict; \
             pick a profile/scale that has one"
        );
        let spec = EmbeddingSpec {
            dim: 16,
            ..EmbeddingSpec::default()
        };
        let first = TokenEncoder::build(&[&d1], &spec, 4);
        for _ in 0..4 {
            let dn = DatasetProfile::genia().generate(0.03).unwrap();
            let again = TokenEncoder::build(&[&dn], &spec, 4);
            assert_eq!(first.pretrained.data(), again.pretrained.data());
        }
    }

    #[test]
    fn cached_sorted_clusters_leave_the_encoder_unchanged() {
        // Regression for the sorted-cluster cache on `Dataset`: the encoder
        // must produce the exact table the per-call collect-and-sort merge
        // produced, so every checkpoint and prediction stays byte-identical.
        let d = DatasetProfile::genia().generate(0.03).unwrap();
        let spec = EmbeddingSpec {
            dim: 16,
            ..EmbeddingSpec::default()
        };
        let cached = TokenEncoder::build(&[&d], &spec, 4);

        // The historical merge, inlined.
        let mut pairs: Vec<(&String, &u64)> = d.clusters().iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut clusters: HashMap<String, u64> = HashMap::new();
        for (k, v) in pairs {
            clusters.entry(k.to_lowercase()).or_insert(*v);
        }
        let table = fewner_text::embed::build_table(
            &spec,
            cached.words.len(),
            |i| cached.words.token(i).to_string(),
            |i| clusters.get(cached.words.token(i)).copied(),
        );
        assert_eq!(cached.pretrained.data(), table.as_slice());

        // Encodings (model inputs, hence predictions) are unchanged too.
        let enc = cached.encode(&d.sentences[0].tokens);
        assert_eq!(enc.len(), d.sentences[0].len());
    }

    #[test]
    fn entity_words_share_cluster_structure() {
        let (d, e) = encoder();
        // Find two gazetteer words of the same family and check cosine.
        let spec = &d.types[0];
        let w1 = spec.gazetteer[0].last().unwrap().to_lowercase();
        let w2 = spec.gazetteer[1].last().unwrap().to_lowercase();
        let (i1, i2) = (e.words.id(&w1), e.words.id(&w2));
        if i1 > 1 && i2 > 1 && i1 != i2 {
            let c = fewner_text::embed::cosine(e.pretrained.row(i1), e.pretrained.row(i2));
            assert!(c > 0.3, "same-family words should correlate: {c}");
        }
    }
}
