//! `fewner-models` — the sequence-labeling backbone and all baseline models.
//!
//! * [`encoding`] — vocabularies + synthetic pre-trained embeddings.
//! * [`crf`] — linear-chain CRFs: the paper's dense head (Eq. 4) and a
//!   way-agnostic slot-shared head for the training-way ablation.
//! * [`backbone`] — CNN-BiGRU-CRF (θ) with FiLM / concatenation hooks for
//!   the context parameters φ (methods B and A of §3.2.4).
//! * [`protonet`] — token-level prototypical networks.
//! * [`snail`] — temporal-convolution + attention meta-learner.
//! * [`frozenlm`] — frozen contextual encoders + trainable CRF, standing in
//!   for the five pre-trained LM baselines.
//! * [`prep`] — episode → model-input conversion.
//!
//! The FineTune baseline needs no struct of its own: it is the backbone with
//! `Conditioning::None`, trained conventionally and fully fine-tuned at test
//! time (see `fewner-core`).

#![warn(missing_docs)]

pub mod backbone;
pub mod crf;
pub mod encoding;
pub mod frozenlm;
pub mod prep;
pub mod protonet;
pub mod snail;

pub use backbone::{Backbone, BackboneConfig, Conditioning, EncoderKind, HeadKind};
pub use crf::{crf_nll, viterbi, viterbi_with, CrfHead, DenseCrf, SlotSharedCrf};
pub use encoding::{EncodedSentence, TokenEncoder};
pub use frozenlm::{FrozenLm, LmFlavor};
pub use prep::{encode_batch, encode_task, LabeledSentence};
pub use protonet::ProtoNet;
pub use snail::{Snail, SnailConfig};
