//! Bridging episodes to model inputs.

use fewner_episode::{EpisodeSentence, Task};
use fewner_text::TagSet;

use crate::encoding::{EncodedSentence, TokenEncoder};

/// A sentence ready for training: encoded inputs + gold tag indices.
pub type LabeledSentence = (EncodedSentence, Vec<usize>);

/// Encodes episode sentences into `(inputs, gold tag indices)` pairs.
pub fn encode_batch(
    enc: &TokenEncoder,
    sentences: &[EpisodeSentence],
    tags: &TagSet,
) -> Vec<LabeledSentence> {
    sentences
        .iter()
        .map(|s| {
            let encoded = enc.encode(&s.tokens);
            let gold = s.tags.iter().map(|&t| tags.index(t)).collect();
            (encoded, gold)
        })
        .collect()
}

/// Encodes a task's support and query sets.
pub fn encode_task(
    enc: &TokenEncoder,
    task: &Task,
) -> (Vec<LabeledSentence>, Vec<LabeledSentence>) {
    let tags = task.tag_set();
    (
        encode_batch(enc, &task.support, &tags),
        encode_batch(enc, &task.query, &tags),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_text::embed::EmbeddingSpec;
    use fewner_util::Rng;

    #[test]
    fn encoded_tasks_align_tokens_and_tags() {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 5, 1, 6).unwrap();
        let task = sampler.sample(&mut Rng::new(2)).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 16,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let (support, query) = encode_task(&enc, &task);
        assert_eq!(support.len(), task.support.len());
        assert_eq!(query.len(), task.query.len());
        for ((inp, gold), src) in support.iter().zip(&task.support) {
            assert_eq!(inp.len(), src.len());
            assert_eq!(gold.len(), src.len());
            let tags = task.tag_set();
            assert!(gold.iter().all(|&g| g < tags.len()));
        }
    }
}
