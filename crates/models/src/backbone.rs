//! The CNN-BiGRU-CRF sequence-labeling backbone (paper §3.2.2, Fig. 3)
//! with FEWNER's conditioning hooks (§3.2.4, Fig. 4).
//!
//! All parameters registered here constitute θ, the task-independent part.
//! The task-specific context parameters φ live in a *separate* store (built
//! by [`Backbone::new_context`]) and enter the forward pass either by
//!
//! * **Method B (default)** — FiLM on the BiGRU output:
//!   `h ← (1 + γ) ⊙ h + η` with `[γ, η] = θ_FiLM · φ + b` (Eq. 8–9; the
//!   `1 +` keeps the untrained φ = 0 an identity, as in the CAVIA/FiLM
//!   literature), or
//! * **Method A (ablation)** — concatenating φ to every BiGRU input
//!   (Eq. 7).
//!
//! With [`Conditioning::None`] the same backbone serves FineTune, MAML and
//! the encoder of ProtoNet/SNAIL — the paper's point that FEWNER is
//! model-agnostic made concrete.

use fewner_tensor::nn::{BiGru, BiLstm, Conv1d, Embedding, Linear};
use fewner_tensor::{Exec, Infer, KernelBackend, ParamId, ParamStore, Var};
use fewner_text::TagSet;
use fewner_util::{Error, Result, Rng};

use crate::crf::{DenseCrf, SlotSharedCrf};
use crate::encoding::{EncodedSentence, TokenEncoder};

/// How the context parameters φ condition the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conditioning {
    /// No conditioning (baselines).
    None,
    /// Method B: FiLM on the BiGRU output (the paper's default).
    Film,
    /// Method A: concatenate φ to each BiGRU input.
    ConcatInput,
}

/// Which recurrent context encoder the backbone uses.
///
/// The paper picks a BiGRU for computational cost (§3.2.2) while stressing
/// the approach is model-agnostic; the BiLSTM alternative makes that claim
/// testable without touching anything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// The paper's bidirectional GRU.
    #[default]
    BiGru,
    /// A bidirectional LSTM of the same hidden size.
    BiLstm,
}

/// Which CRF head the backbone decodes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// The paper's dense CRF for a fixed way-count.
    Dense {
        /// The (fixed) number of ways.
        n_ways: usize,
    },
    /// Way-agnostic slot-shared head (needed for the training-way ablation).
    SlotShared {
        /// Slot-embedding dimensionality.
        slot_dim: usize,
        /// Maximum supported ways.
        max_slots: usize,
    },
}

/// Hyper-parameters of the backbone.
#[derive(Debug, Clone)]
pub struct BackboneConfig {
    /// Word-embedding dimensionality (paper: 300; scaled default 50).
    pub word_dim: usize,
    /// Character-embedding dimensionality (paper: 100; scaled default 16).
    pub char_dim: usize,
    /// CNN filters per window width (paper: 150 total over widths 2,3,4).
    pub char_filters: usize,
    /// CNN window widths.
    pub char_widths: Vec<usize>,
    /// GRU hidden size per direction (paper: 128; scaled default 48).
    pub hidden: usize,
    /// Context-parameter dimensionality of the global (FiLM / concat) part
    /// of φ (paper: 256; scaled default 32).
    pub phi_dim: usize,
    /// Per-slot context width: φ additionally carries `max_ways ×
    /// slot_ctx_dim` entries that condition the emission layer per class
    /// slot (0 disables). §3.2.4 leaves the conditioning site open ("where
    /// and how to condition the backbone network"); conditioning the
    /// emission layer as well as the BiGRU output is what lets the inner
    /// loop bind class slots quickly at the reproduction's reduced scale.
    pub slot_ctx_dim: usize,
    /// Conditioning method.
    pub conditioning: Conditioning,
    /// Dropout after the representation and recurrent layers (paper: 0.3).
    pub dropout: f32,
    /// Ablation switch: remove the character CNN entirely.
    pub use_char_cnn: bool,
    /// Recurrent context encoder (BiGRU per the paper, or BiLSTM).
    pub encoder: EncoderKind,
    /// CRF head.
    pub head: HeadKind,
}

impl BackboneConfig {
    /// The number of class slots φ's per-slot block must cover.
    pub fn max_ways(&self) -> usize {
        match self.head {
            HeadKind::Dense { n_ways } => n_ways,
            HeadKind::SlotShared { max_slots, .. } => max_slots,
        }
    }

    /// Total φ dimensionality: global part + per-slot block.
    pub fn phi_total(&self) -> usize {
        self.phi_dim + self.max_ways() * self.slot_ctx_dim
    }

    /// The scaled-down default used throughout the reproduction.
    pub fn default_for(n_ways: usize) -> BackboneConfig {
        BackboneConfig {
            word_dim: 50,
            char_dim: 16,
            char_filters: 16,
            char_widths: vec![2, 3, 4],
            hidden: 48,
            phi_dim: 32,
            slot_ctx_dim: 8,
            conditioning: Conditioning::Film,
            dropout: 0.3,
            use_char_cnn: true,
            encoder: EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways },
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.word_dim == 0 || self.hidden == 0 {
            return Err(Error::InvalidConfig("zero-sized backbone layer".into()));
        }
        if self.use_char_cnn && (self.char_widths.is_empty() || self.char_filters == 0) {
            return Err(Error::InvalidConfig("char CNN enabled but empty".into()));
        }
        if self.conditioning != Conditioning::None && self.phi_dim == 0 {
            return Err(Error::InvalidConfig(
                "conditioning requires phi_dim > 0".into(),
            ));
        }
        Ok(())
    }
}

enum Head {
    Dense(DenseCrf),
    SlotShared(SlotSharedCrf),
}

enum SeqEncoder {
    Gru(BiGru),
    Lstm(BiLstm),
}

impl SeqEncoder {
    fn apply<E: Exec>(&self, g: &E, store: &ParamStore, x: Var) -> Var {
        match self {
            SeqEncoder::Gru(e) => e.apply(g, store, x),
            SeqEncoder::Lstm(e) => e.apply(g, store, x),
        }
    }
}

/// Sentence-independent, φ-conditioned quantities for one task.
///
/// Everything here depends only on φ (and the tag set), not on the
/// sentence, so batched decoding computes it once per adapted task instead
/// of once per query sentence.
struct TaskCtx {
    /// The global part of φ (`[1, phi_dim]`), for ConcatInput and FiLM.
    global: Option<Var>,
    /// FiLM rows `(γ, η)` with γ already offset by 1.
    film: Option<(Var, Var)>,
    /// Transposed active slot-context rows `[slot_ctx_dim, n]`.
    active_t: Option<Var>,
}

/// The θ network: embeddings, char-CNN, BiGRU, FiLM generator and CRF head.
pub struct Backbone {
    cfg: BackboneConfig,
    word_emb: Embedding,
    char_emb: Option<Embedding>,
    char_cnn: Option<Conv1d>,
    encoder: SeqEncoder,
    film_gen: Option<Linear>,
    slot_ctx: Option<Linear>,
    head: Head,
}

impl Backbone {
    /// Registers all θ parameters in `store`, seeding word embeddings from
    /// the encoder's pre-trained table (fine-tuned during training, §4.1.3).
    pub fn new(
        cfg: BackboneConfig,
        enc: &TokenEncoder,
        store: &mut ParamStore,
        rng: &mut Rng,
    ) -> Result<Backbone> {
        cfg.validate()?;
        if enc.dim() != cfg.word_dim {
            return Err(Error::InvalidConfig(format!(
                "encoder dim {} != cfg.word_dim {}",
                enc.dim(),
                cfg.word_dim
            )));
        }
        let word_emb = Embedding::from_array(store, "words", enc.pretrained.clone());
        let (char_emb, char_cnn, char_out) = if cfg.use_char_cnn {
            let ce = Embedding::new(store, "chars", enc.chars.len(), cfg.char_dim, rng);
            let cnn = Conv1d::new(
                store,
                "charcnn",
                cfg.char_dim,
                &cfg.char_widths,
                cfg.char_filters,
                rng,
            );
            let out = cnn.out_dim();
            (Some(ce), Some(cnn), out)
        } else {
            (None, None, 0)
        };

        let mut in_dim = cfg.word_dim + char_out;
        if cfg.conditioning == Conditioning::ConcatInput {
            in_dim += cfg.phi_dim;
        }
        let encoder = match cfg.encoder {
            EncoderKind::BiGru => {
                SeqEncoder::Gru(BiGru::new(store, "bigru", in_dim, cfg.hidden, rng))
            }
            EncoderKind::BiLstm => {
                SeqEncoder::Lstm(BiLstm::new(store, "bilstm", in_dim, cfg.hidden, rng))
            }
        };
        let film_gen = (cfg.conditioning == Conditioning::Film)
            .then(|| Linear::new(store, "film", cfg.phi_dim, 4 * cfg.hidden, true, rng));
        let slot_ctx =
            (cfg.conditioning != Conditioning::None && cfg.slot_ctx_dim > 0).then(|| {
                Linear::new(
                    store,
                    "slotctx",
                    2 * cfg.hidden,
                    cfg.slot_ctx_dim,
                    false,
                    rng,
                )
            });

        let head = match cfg.head {
            HeadKind::Dense { n_ways } => {
                Head::Dense(DenseCrf::new(store, "crf", 2 * cfg.hidden, n_ways, rng))
            }
            HeadKind::SlotShared {
                slot_dim,
                max_slots,
            } => Head::SlotShared(SlotSharedCrf::new(
                store,
                "crf",
                2 * cfg.hidden,
                slot_dim,
                max_slots,
                rng,
            )),
        };

        Ok(Backbone {
            cfg,
            word_emb,
            char_emb,
            char_cnn,
            encoder,
            film_gen,
            slot_ctx,
            head,
        })
    }

    /// The configuration this backbone was built with.
    pub fn config(&self) -> &BackboneConfig {
        &self.cfg
    }

    /// Creates a fresh context-parameter store holding φ (initialised to
    /// **0**, re-zeroed per task via `ParamStore::zero_all` — Algorithm 1).
    pub fn new_context(&self) -> (ParamStore, ParamId) {
        let mut store = ParamStore::new();
        let id = store.add("phi", fewner_tensor::Array::zeros(1, self.cfg.phi_total()));
        (store, id)
    }

    /// The φ-derived quantities that feed the input and recurrent layers
    /// (no slot contexts — those additionally depend on the tag set).
    fn phi_ctx<E: Exec>(&self, g: &E, theta: &ParamStore, phi: Option<Var>) -> TaskCtx {
        let global = match self.cfg.conditioning {
            Conditioning::None => None,
            Conditioning::Film => {
                let phi = phi.expect("Film conditioning requires phi");
                Some(g.slice_cols(phi, 0, self.cfg.phi_dim))
            }
            Conditioning::ConcatInput => {
                let phi = phi.expect("ConcatInput conditioning requires phi");
                Some(g.slice_cols(phi, 0, self.cfg.phi_dim))
            }
        };
        let film = self.film_gen.as_ref().map(|film| {
            let ge = film.apply(g, theta, global.expect("Film conditioning requires phi"));
            let gamma = g.add_scalar(g.slice_cols(ge, 0, 2 * self.cfg.hidden), 1.0);
            let eta = g.slice_cols(ge, 2 * self.cfg.hidden, 2 * self.cfg.hidden);
            (gamma, eta)
        });
        TaskCtx {
            global,
            film,
            active_t: None,
        }
    }

    /// Full per-task context: [`Backbone::phi_ctx`] plus the transposed
    /// active slot-context rows used by the emission layer.
    fn task_ctx<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        phi: Option<Var>,
        tags: &TagSet,
    ) -> TaskCtx {
        let mut ctx = self.phi_ctx(g, theta, phi);
        if let (Some(_), Some(phi)) = (&self.slot_ctx, phi) {
            // φ's per-slot block, reshaped to [max_ways, slot_ctx_dim]; the
            // active n slots score each token via a shared projection of h.
            let n = tags.n_ways();
            let ds = self.cfg.slot_ctx_dim;
            let block = g.slice_cols(phi, self.cfg.phi_dim, self.cfg.max_ways() * ds);
            let slots = g.reshape(block, self.cfg.max_ways(), ds);
            let active = g.gather_rows(slots, &(0..n).collect::<Vec<_>>());
            ctx.active_t = Some(g.transpose(active));
        }
        ctx
    }

    /// Token representations `[L, word_dim (+ char features) (+ φ)]`.
    fn token_repr_ctx<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        ctx: &TaskCtx,
        sent: &EncodedSentence,
        rng: &mut Rng,
    ) -> Var {
        let words = self.word_emb.apply(g, theta, &sent.word_ids);
        let mut parts = vec![words];
        if let (Some(ce), Some(cnn)) = (&self.char_emb, &self.char_cnn) {
            let rows: Vec<Var> = sent
                .char_ids
                .iter()
                .map(|ids| cnn.apply(g, theta, ce.apply(g, theta, ids)))
                .collect();
            parts.push(g.concat_rows(&rows));
        }
        if self.cfg.conditioning == Conditioning::ConcatInput {
            let global = ctx.global.expect("ConcatInput conditioning requires phi");
            // Broadcast φ over tokens by explicit row stacking.
            let copies: Vec<Var> = (0..sent.len()).map(|_| global).collect();
            parts.push(g.concat_rows(&copies));
        }
        let x = if parts.len() == 1 {
            parts[0]
        } else {
            g.concat_cols(&parts)
        };
        g.dropout(x, self.cfg.dropout, rng)
    }

    /// Contextual hidden states `[L, 2H]` under a pre-computed task context.
    fn hidden_ctx<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        ctx: &TaskCtx,
        sent: &EncodedSentence,
        rng: &mut Rng,
    ) -> Var {
        assert!(!sent.is_empty(), "empty sentence");
        let x = self.token_repr_ctx(g, theta, ctx, sent, rng);
        let mut h = self.encoder.apply(g, theta, x);
        h = g.dropout(h, self.cfg.dropout, rng);
        if let Some((gamma, eta)) = ctx.film {
            h = g.film(h, gamma, eta);
        }
        h
    }

    /// Contextual hidden states `[L, 2H]`, conditioned on φ when given.
    ///
    /// Dropout follows the executor's [`fewner_tensor::ExecMode`]: active on
    /// a training tape (`Graph::new`), inert on `Graph::eval()` and [`Infer`].
    pub fn hidden<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        phi: Option<Var>,
        sent: &EncodedSentence,
        rng: &mut Rng,
    ) -> Var {
        let ctx = self.phi_ctx(g, theta, phi);
        self.hidden_ctx(g, theta, &ctx, sent, rng)
    }

    /// Emission scores including the per-slot context conditioning.
    fn emissions_ctx<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        ctx: &TaskCtx,
        h: Var,
        tags: &TagSet,
    ) -> Var {
        use crate::crf::CrfHead as _;
        let base = match &self.head {
            Head::Dense(c) => c.emissions(g, theta, h, tags),
            Head::SlotShared(c) => c.emissions(g, theta, h, tags),
        };
        let (Some(slot_ctx), Some(active_t)) = (&self.slot_ctx, ctx.active_t) else {
            return base;
        };
        let n = tags.n_ways();
        let proj = slot_ctx.apply(g, theta, h); // [L, ds]
        let extra = g.matmul(proj, active_t); // [L, n]
                                              // Expand to the tag layout [O, B-0, I-0, B-1, I-1, …]: the O column
                                              // is untouched; B and I of slot s share the slot's context score.
        let len = g.shape(h).0;
        let mut cols: Vec<Var> = Vec::with_capacity(tags.len());
        cols.push(g.constant(fewner_tensor::Array::zeros(len, 1)));
        for s in 0..n {
            let c = g.slice_cols(extra, s, 1);
            cols.push(c);
            cols.push(c);
        }
        g.add(base, g.concat_cols(&cols))
    }

    /// Transition scores from the head.
    fn head_transitions<E: Exec>(&self, g: &E, theta: &ParamStore, tags: &TagSet) -> (Var, Var) {
        use crate::crf::CrfHead as _;
        match &self.head {
            Head::Dense(c) => c.transitions(g, theta, tags),
            Head::SlotShared(c) => c.transitions(g, theta, tags),
        }
    }

    /// Sequence NLL of one sentence (`gold` are tag indices).
    #[allow(clippy::too_many_arguments)]
    pub fn nll<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        phi: Option<Var>,
        sent: &EncodedSentence,
        gold: &[usize],
        tags: &TagSet,
        rng: &mut Rng,
    ) -> Var {
        let ctx = self.task_ctx(g, theta, phi, tags);
        let h = self.hidden_ctx(g, theta, &ctx, sent, rng);
        let e = self.emissions_ctx(g, theta, &ctx, h, tags);
        let (trans, start) = self.head_transitions(g, theta, tags);
        crate::crf::crf_nll(g, e, trans, start, gold)
    }

    /// Mean sequence NLL over a batch — the per-task loss `L(θ, φ)`.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_loss<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        phi: Option<Var>,
        batch: &[(EncodedSentence, Vec<usize>)],
        tags: &TagSet,
        rng: &mut Rng,
    ) -> Var {
        assert!(!batch.is_empty(), "empty batch");
        let losses: Vec<Var> = batch
            .iter()
            .map(|(s, gold)| self.nll(g, theta, phi, s, gold, tags, rng))
            .collect();
        let total = g.concat_cols(&losses);
        g.mean_all(total)
    }

    /// Viterbi-decodes every sentence of one adapted task on the
    /// gradient-free [`Infer`] executor.
    ///
    /// The φ-conditioned projections (FiLM rows, slot contexts) and the
    /// head's transition scores are computed **once** for the whole task;
    /// per-sentence scratch buffers are recycled between sentences via the
    /// arena's mark/reset. Paths are bitwise identical to decoding each
    /// sentence on its own tape.
    pub fn decode_task<'a, I>(
        &self,
        theta: &ParamStore,
        phi_store: Option<(&ParamStore, ParamId)>,
        sents: I,
        tags: &TagSet,
    ) -> Vec<Vec<usize>>
    where
        I: IntoIterator<Item = &'a EncodedSentence>,
    {
        self.decode_task_with(KernelBackend::from_env(), theta, phi_store, sents, tags)
    }

    /// [`Backbone::decode_task`] with an explicit [`KernelBackend`].
    ///
    /// Both the executor's forward kernels and the Viterbi sweep run on the
    /// chosen backend; Scalar and Blocked produce bitwise-identical paths
    /// (the kernel-equivalence contract, see `fewner_tensor::backend`).
    pub fn decode_task_with<'a, I>(
        &self,
        backend: KernelBackend,
        theta: &ParamStore,
        phi_store: Option<(&ParamStore, ParamId)>,
        sents: I,
        tags: &TagSet,
    ) -> Vec<Vec<usize>>
    where
        I: IntoIterator<Item = &'a EncodedSentence>,
    {
        let ex = Infer::with_backend(backend);
        let phi = phi_store.map(|(s, id)| ex.param(s, id));
        let ctx = self.task_ctx(&ex, theta, phi, tags);
        let (trans, start) = self.head_transitions(&ex, theta, tags);
        let (trans, start) = (ex.value(trans), ex.value(start));
        let mark = ex.mark();
        let mut rng = Rng::new(0); // inference mode: dropout inert, rng unused
        let mut paths = Vec::new();
        for sent in sents {
            let h = self.hidden_ctx(&ex, theta, &ctx, sent, &mut rng);
            let e = self.emissions_ctx(&ex, theta, &ctx, h, tags);
            paths.push(crate::crf::viterbi_with(
                backend,
                &ex.value(e),
                &trans,
                &start,
                tags,
            ));
            ex.reset_to(mark);
        }
        paths
    }

    /// Viterbi-decodes one sentence to tag indices.
    pub fn decode(
        &self,
        theta: &ParamStore,
        phi_store: Option<(&ParamStore, ParamId)>,
        sent: &EncodedSentence,
        tags: &TagSet,
    ) -> Vec<usize> {
        self.decode_task(theta, phi_store, std::iter::once(sent), tags)
            .pop()
            .expect("decode_task returns one path per sentence")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_corpus::DatasetProfile;
    use fewner_tensor::Graph;
    use fewner_text::embed::EmbeddingSpec;

    fn setup(cond: Conditioning) -> (TokenEncoder, Backbone, ParamStore, Rng) {
        let d = DatasetProfile::bionlp13cg().generate(0.005).unwrap();
        let spec = EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        };
        let enc = TokenEncoder::build(&[&d], &spec, 4);
        let mut rng = Rng::new(13);
        let mut store = ParamStore::new();
        let cfg = BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 12,
            phi_dim: 10,
            slot_ctx_dim: 4,
            conditioning: cond,
            dropout: 0.3,
            use_char_cnn: true,
            encoder: EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 3 },
        };
        let bb = Backbone::new(cfg, &enc, &mut store, &mut rng).unwrap();
        (enc, bb, store, rng)
    }

    fn sample_sentence(enc: &TokenEncoder) -> EncodedSentence {
        enc.encode(&[
            "the".to_string(),
            "Protein".to_string(),
            "binding".to_string(),
            "assay".to_string(),
        ])
    }

    #[test]
    fn forward_shapes_for_all_conditioning_modes() {
        for cond in [
            Conditioning::None,
            Conditioning::Film,
            Conditioning::ConcatInput,
        ] {
            let (enc, bb, store, mut rng) = setup(cond);
            let sent = sample_sentence(&enc);
            let g = Graph::eval();
            let phi = if cond == Conditioning::None {
                None
            } else {
                let (ps, id) = bb.new_context();
                // Bind via constant copy (the store is dropped here).
                Some(g.constant((**ps.value(id)).clone()))
            };
            let h = bb.hidden(&g, &store, phi, &sent, &mut rng);
            assert_eq!(g.shape(h), (4, 24));
        }
    }

    #[test]
    fn zero_phi_film_is_identity_of_unconditioned_network() {
        // With φ = 0 and zero-initialised FiLM bias, γ = 1, η = b ≈ 0 only
        // if film bias is zero — our Linear biases start at zero, so FiLM
        // must be an exact identity at initialisation.
        let (enc, bb, store, mut rng) = setup(Conditioning::Film);
        let sent = sample_sentence(&enc);
        let (phi_store, phi_id) = bb.new_context();

        let g = Graph::eval();
        let phi = g.param(&phi_store, phi_id);
        let h_cond = bb.hidden(&g, &store, Some(phi), &sent, &mut rng);

        // Manually compute the unconditioned hidden state on a second graph.
        let g2 = Graph::eval();
        let ctx = TaskCtx {
            global: None,
            film: None,
            active_t: None,
        };
        let x = bb.token_repr_ctx(&g2, &store, &ctx, &sent, &mut rng);
        let h_plain = bb.encoder.apply(&g2, &store, x);

        let (a, b) = (g.value(h_cond), g2.value(h_plain));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn phi_changes_the_output_once_nonzero() {
        let (enc, bb, store, mut rng) = setup(Conditioning::Film);
        let sent = sample_sentence(&enc);
        let (mut phi_store, phi_id) = bb.new_context();
        let g = Graph::eval();
        let h0 = bb.hidden(
            &g,
            &store,
            Some(g.param(&phi_store, phi_id)),
            &sent,
            &mut rng,
        );
        let v0 = g.value(h0);

        phi_store.set(
            phi_id,
            fewner_tensor::Array::full(1, bb.config().phi_total(), 0.5),
        );
        let g1 = Graph::eval();
        let h1 = bb.hidden(
            &g1,
            &store,
            Some(g1.param(&phi_store, phi_id)),
            &sent,
            &mut rng,
        );
        let v1 = g1.value(h1);
        assert_ne!(v0.data(), v1.data());
    }

    #[test]
    fn phi_gradients_flow_and_theta_gradients_flow() {
        let (enc, bb, store, mut rng) = setup(Conditioning::Film);
        let sent = sample_sentence(&enc);
        let tags = TagSet::new(3).unwrap();
        let (phi_store, phi_id) = bb.new_context();
        let g = Graph::eval();
        let phi = g.param(&phi_store, phi_id);
        let gold = vec![0usize; sent.len()];
        let nll = bb.nll(&g, &store, Some(phi), &sent, &gold, &tags, &mut rng);
        let grads = g.backward(nll).unwrap();
        let phi_grads = grads.for_store(&phi_store);
        assert!(
            phi_grads.get(phi_id).is_some(),
            "phi must receive gradients"
        );
        let theta_grads = grads.for_store(&store);
        let n_with = (0..store.len())
            .filter(|&i| theta_grads.get_at(i).is_some())
            .count();
        assert!(n_with > store.len() / 2, "theta gradients flow broadly");
    }

    #[test]
    fn decode_produces_valid_bio() {
        let (enc, bb, store, _) = setup(Conditioning::None);
        let sent = sample_sentence(&enc);
        let tags = TagSet::new(3).unwrap();
        let path = bb.decode(&store, None, &sent, &tags);
        assert_eq!(path.len(), sent.len());
        let decoded: Vec<fewner_text::Tag> = path.iter().map(|&i| tags.tag(i)).collect();
        fewner_text::validate_tags(&decoded, &tags).unwrap();
    }

    #[test]
    fn char_cnn_ablation_builds_and_runs() {
        let d = DatasetProfile::bionlp13cg().generate(0.005).unwrap();
        let spec = EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        };
        let enc = TokenEncoder::build(&[&d], &spec, 4);
        let mut rng = Rng::new(17);
        let mut store = ParamStore::new();
        let cfg = BackboneConfig {
            use_char_cnn: false,
            ..BackboneConfig {
                word_dim: 20,
                ..BackboneConfig::default_for(3)
            }
        };
        let bb = Backbone::new(cfg, &enc, &mut store, &mut rng).unwrap();
        let g = Graph::eval();
        let (ps, id) = bb.new_context();
        let phi = g.param(&ps, id);
        let sent = enc.encode(&["alpha".to_string(), "beta".to_string()]);
        let h = bb.hidden(&g, &store, Some(phi), &sent, &mut rng);
        assert_eq!(g.shape(h).0, 2);
    }

    /// The batched-decode fast path (task context computed once) must
    /// reproduce exactly the paths of a per-sentence tape decode.
    #[test]
    fn batched_decode_matches_per_sentence_tape_decode() {
        for cond in [
            Conditioning::None,
            Conditioning::Film,
            Conditioning::ConcatInput,
        ] {
            let (enc, bb, store, _) = setup(cond);
            let tags = TagSet::new(3).unwrap();
            let sents: Vec<EncodedSentence> = [
                vec!["the", "Protein", "binding", "assay"],
                vec!["Cells", "express", "kinase"],
                vec!["a", "novel", "gene", "variant", "appears"],
            ]
            .iter()
            .map(|ws| enc.encode(&ws.iter().map(|w| w.to_string()).collect::<Vec<_>>()))
            .collect();
            let (mut phi_store, phi_id) = bb.new_context();
            phi_store.set(
                phi_id,
                fewner_tensor::Array::full(1, bb.config().phi_total(), 0.25),
            );
            let phi_ref = (cond != Conditioning::None).then_some((&phi_store, phi_id));

            // Reference: decode each sentence on its own tape, recomputing
            // the φ projections and transitions from scratch every time.
            let mut rng = Rng::new(0);
            let reference: Vec<Vec<usize>> = sents
                .iter()
                .map(|sent| {
                    let g = Graph::eval();
                    let phi = phi_ref.map(|(s, id)| g.param(s, id));
                    let ctx = bb.task_ctx(&g, &store, phi, &tags);
                    let h = bb.hidden_ctx(&g, &store, &ctx, sent, &mut rng);
                    let e = bb.emissions_ctx(&g, &store, &ctx, h, &tags);
                    let (trans, start) = bb.head_transitions(&g, &store, &tags);
                    crate::crf::viterbi(&g.value(e), &g.value(trans), &g.value(start), &tags)
                })
                .collect();

            let batched = bb.decode_task(&store, phi_ref, sents.iter(), &tags);
            assert_eq!(batched, reference, "conditioning {cond:?}");
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(BackboneConfig {
            word_dim: 0,
            ..BackboneConfig::default_for(5)
        }
        .validate()
        .is_err());
        assert!(BackboneConfig {
            phi_dim: 0,
            slot_ctx_dim: 0,
            conditioning: Conditioning::Film,
            ..BackboneConfig::default_for(5)
        }
        .validate()
        .is_err());
        assert!(BackboneConfig {
            char_widths: vec![],
            ..BackboneConfig::default_for(5)
        }
        .validate()
        .is_err());
    }
}
