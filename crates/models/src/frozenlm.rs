//! Frozen contextual-encoder baselines standing in for GPT2 / Flair / ELMo
//! / BERT / XLNet (paper §4.1.2).
//!
//! The paper stacks a CRF on contextual language-model embeddings produced
//! by the Flair framework, which "does not allow further fine-tuning":
//! during episodic training and at test time **only the CRF is trainable**.
//! Our substitute preserves that degree-of-freedom structure exactly: a
//! frozen encoder (the pre-trained word-embedding table plus a fixed-seed
//! BiGRU "contextualiser") produces `[word embedding ; contextual state]`
//! features, and a trainable [`DenseCrf`] decodes them. The five flavours
//! differ in capacity and initialisation seed, mirroring how the five real
//! LMs differ in architecture; their relative ordering in the paper is
//! dataset-dependent and within overlapping confidence intervals, so no
//! finer distinction is warranted.

use fewner_tensor::nn::{BiGru, Embedding};
use fewner_tensor::{Exec, Infer, ParamStore, Var};
use fewner_text::TagSet;
use fewner_util::{Error, Result, Rng};

use crate::crf::{CrfHead, DenseCrf};
use crate::encoding::{EncodedSentence, TokenEncoder};
use crate::prep::LabeledSentence;

/// Which pre-trained language model a [`FrozenLm`] imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LmFlavor {
    /// GPT-2 substitute.
    Gpt2,
    /// Flair substitute.
    Flair,
    /// ELMo substitute.
    Elmo,
    /// BERT substitute.
    Bert,
    /// XLNet substitute.
    Xlnet,
}

impl LmFlavor {
    /// All five flavours, in the paper's table order.
    pub const ALL: [LmFlavor; 5] = [
        LmFlavor::Gpt2,
        LmFlavor::Flair,
        LmFlavor::Elmo,
        LmFlavor::Bert,
        LmFlavor::Xlnet,
    ];

    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            LmFlavor::Gpt2 => "GPT2",
            LmFlavor::Flair => "Flair",
            LmFlavor::Elmo => "ELMo",
            LmFlavor::Bert => "BERT",
            LmFlavor::Xlnet => "XLNet",
        }
    }

    /// Encoder hidden size (per direction).
    fn hidden(&self) -> usize {
        match self {
            LmFlavor::Gpt2 => 32,
            LmFlavor::Flair => 24,
            LmFlavor::Elmo => 40,
            LmFlavor::Bert => 36,
            LmFlavor::Xlnet => 36,
        }
    }

    /// Initialisation seed for the frozen encoder.
    fn seed(&self) -> u64 {
        fewner_text::embed::stable_hash(self.name())
    }
}

/// A frozen contextual encoder with a trainable CRF head.
pub struct FrozenLm {
    flavor: LmFlavor,
    /// Frozen parameters (embedding table + contextualiser).
    pub frozen: ParamStore,
    /// Trainable parameters (the CRF head only).
    pub head_params: ParamStore,
    word_emb: Embedding,
    contextualiser: BiGru,
    head: DenseCrf,
}

impl FrozenLm {
    /// Builds the frozen encoder for `flavor` plus a trainable CRF for an
    /// `n_ways`-way tag space.
    pub fn new(flavor: LmFlavor, enc: &TokenEncoder, n_ways: usize) -> Result<FrozenLm> {
        if n_ways == 0 {
            return Err(Error::InvalidConfig("n_ways must be positive".into()));
        }
        let mut frozen = ParamStore::new();
        let mut rng = Rng::new(flavor.seed());
        let word_emb = Embedding::from_array(&mut frozen, "lm.words", enc.pretrained.clone());
        let contextualiser =
            BiGru::new(&mut frozen, "lm.ctx", enc.dim(), flavor.hidden(), &mut rng);
        let mut head_params = ParamStore::new();
        let feat = enc.dim() + 2 * flavor.hidden();
        let head = DenseCrf::new(&mut head_params, "head", feat, n_ways, &mut rng);
        Ok(FrozenLm {
            flavor,
            frozen,
            head_params,
            word_emb,
            contextualiser,
            head,
        })
    }

    /// The imitated flavour.
    pub fn flavor(&self) -> LmFlavor {
        self.flavor
    }

    /// Frozen contextual features `[L, dim + 2H]`.
    fn features<E: Exec>(&self, g: &E, sent: &EncodedSentence) -> Var {
        g.freeze(&self.frozen);
        let words = self.word_emb.apply(g, &self.frozen, &sent.word_ids);
        let ctx = self.contextualiser.apply(g, &self.frozen, words);
        g.concat_cols(&[words, ctx])
    }

    /// Mean sequence NLL of a batch, differentiable w.r.t. the head only.
    pub fn batch_loss<E: Exec>(
        &self,
        g: &E,
        batch: &[LabeledSentence],
        tags: &TagSet,
    ) -> Result<Var> {
        self.batch_loss_with(g, &self.head_params, batch, tags)
    }

    /// Like [`FrozenLm::batch_loss`] but against an external head store
    /// (e.g. a test-time fine-tuned copy; cloned stores keep their id).
    pub fn batch_loss_with<E: Exec>(
        &self,
        g: &E,
        head: &ParamStore,
        batch: &[LabeledSentence],
        tags: &TagSet,
    ) -> Result<Var> {
        if batch.is_empty() {
            return Err(Error::InvalidConfig("empty batch".into()));
        }
        let losses: Vec<Var> = batch
            .iter()
            .map(|(sent, gold)| {
                let feats = self.features(g, sent);
                self.head.nll(g, head, feats, gold, tags)
            })
            .collect();
        let stacked = g.concat_cols(&losses);
        Ok(g.mean_all(stacked))
    }

    /// Viterbi decode of one sentence.
    pub fn predict(&self, sent: &EncodedSentence, tags: &TagSet) -> Vec<usize> {
        self.predict_with(&self.head_params, sent, tags)
    }

    /// Viterbi decode against an external head store.
    pub fn predict_with(
        &self,
        head: &ParamStore,
        sent: &EncodedSentence,
        tags: &TagSet,
    ) -> Vec<usize> {
        self.predict_task_with(head, std::iter::once(sent), tags)
            .pop()
            .expect("predict_task_with returns one path per sentence")
    }

    /// Viterbi decode of every sentence of one task against an external
    /// head store, on the gradient-free [`Infer`] executor.
    ///
    /// The head's transition scores are computed **once** per task;
    /// per-sentence scratch buffers are recycled between sentences.
    pub fn predict_task_with<'a, I>(
        &self,
        head: &ParamStore,
        sents: I,
        tags: &TagSet,
    ) -> Vec<Vec<usize>>
    where
        I: IntoIterator<Item = &'a EncodedSentence>,
    {
        let ex = Infer::new();
        let (trans, start) = self.head.transitions(&ex, head, tags);
        let (trans, start) = (ex.value(trans), ex.value(start));
        let mark = ex.mark();
        sents
            .into_iter()
            .map(|sent| {
                let feats = self.features(&ex, sent);
                let e = self.head.emissions(&ex, head, feats, tags);
                let path = crate::crf::viterbi(&ex.value(e), &trans, &start, tags);
                ex.reset_to(mark);
                path
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::encode_task;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_tensor::Graph;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (TokenEncoder, Vec<LabeledSentence>, TagSet) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let task = sampler.sample(&mut Rng::new(4)).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let (support, _) = encode_task(&enc, &task);
        (enc, support, task.tag_set())
    }

    #[test]
    fn frozen_encoder_receives_no_gradients() {
        let (enc, support, tags) = setup();
        let lm = FrozenLm::new(LmFlavor::Bert, &enc, 3).unwrap();
        let g = Graph::new();
        let loss = lm.batch_loss(&g, &support, &tags).unwrap();
        let grads = g.backward(loss).unwrap();
        let frozen_grads = grads.for_store(&lm.frozen);
        assert!(
            (0..lm.frozen.len()).all(|i| frozen_grads.get_at(i).is_none()),
            "frozen encoder must receive no gradients"
        );
        let head_grads = grads.for_store(&lm.head_params);
        assert!((0..lm.head_params.len()).any(|i| head_grads.get_at(i).is_some()));
    }

    #[test]
    fn flavours_produce_different_features() {
        let (enc, support, _) = setup();
        let a = FrozenLm::new(LmFlavor::Gpt2, &enc, 3).unwrap();
        let b = FrozenLm::new(LmFlavor::Elmo, &enc, 3).unwrap();
        let g = Graph::new();
        let fa = g.value(a.features(&g, &support[0].0));
        let fb = g.value(b.features(&g, &support[0].0));
        assert_ne!(fa.shape(), fb.shape(), "capacities differ");
    }

    #[test]
    fn head_training_reduces_loss_and_decodes_validly() {
        let (enc, support, tags) = setup();
        let mut lm = FrozenLm::new(LmFlavor::Flair, &enc, 3).unwrap();
        let mut opt = fewner_tensor::Adam::new(0.02);
        let (mut first, mut last) = (None, 0.0);
        for _ in 0..30 {
            let g = Graph::new();
            let loss = lm.batch_loss(&g, &support, &tags).unwrap();
            last = g.value(loss).scalar_value();
            first.get_or_insert(last);
            let grads = g.backward(loss).unwrap().for_store(&lm.head_params);
            opt.step(&mut lm.head_params, &grads).unwrap();
        }
        assert!(last < first.unwrap());
        let pred = lm.predict(&support[0].0, &tags);
        let decoded: Vec<fewner_text::Tag> = pred.iter().map(|&i| tags.tag(i)).collect();
        fewner_text::validate_tags(&decoded, &tags).unwrap();
    }

    #[test]
    fn deterministic_construction() {
        let (enc, support, _) = setup();
        let a = FrozenLm::new(LmFlavor::Xlnet, &enc, 3).unwrap();
        let b = FrozenLm::new(LmFlavor::Xlnet, &enc, 3).unwrap();
        let g = Graph::new();
        let fa = g.value(a.features(&g, &support[0].0));
        let fb = g.value(b.features(&g, &support[0].0));
        assert_eq!(fa.data(), fb.data());
    }
}
