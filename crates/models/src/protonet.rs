//! Prototypical-network baseline (paper §4.1.2).
//!
//! Following Fritzler et al., sequence labeling is reduced to *per-token*
//! classification: BiGRU token features are compared against class
//! prototypes — the mean support feature of each BIO tag — and a token is
//! assigned the nearest prototype by squared Euclidean distance. There is
//! no CRF and no sequence structure, which is exactly the weakness the
//! paper's comparison exposes.

use fewner_tensor::{Exec, Infer, ParamStore, Var};
use fewner_text::TagSet;
use fewner_util::{Error, Result, Rng};

use crate::backbone::Backbone;
use crate::prep::LabeledSentence;

/// Distance used for unsupported classes (no support tokens): effectively
/// removes the class from the softmax.
const MISSING_CLASS_LOGIT: f32 = -1.0e4;

/// Prototypical network over a (conditioning-free) backbone encoder.
pub struct ProtoNet {
    /// The shared encoder (built with `Conditioning::None`).
    pub encoder: Backbone,
}

impl ProtoNet {
    /// Wraps an encoder backbone.
    pub fn new(encoder: Backbone) -> ProtoNet {
        ProtoNet { encoder }
    }

    /// Computes per-class prototypes from support sentences.
    ///
    /// Returns one `[1, 2H]` prototype per tag class (`None` when the class
    /// has no support tokens).
    fn prototypes<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        support: &[LabeledSentence],
        tags: &TagSet,
        rng: &mut Rng,
    ) -> Vec<Option<Var>> {
        let n_classes = tags.len();
        // Gather (sentence hidden, token index) per class.
        let mut class_rows: Vec<Vec<Var>> = vec![Vec::new(); n_classes];
        for (sent, gold) in support {
            let h = self.encoder.hidden(g, theta, None, sent, rng);
            for (t, &class) in gold.iter().enumerate() {
                class_rows[class].push(g.row(h, t));
            }
        }
        class_rows
            .into_iter()
            .map(|rows| {
                if rows.is_empty() {
                    None
                } else {
                    Some(g.row_mean(g.concat_rows(&rows)))
                }
            })
            .collect()
    }

    /// Negative-distance logits `[L, 2N+1]` for one query sentence.
    ///
    /// Distances are normalised by the feature dimensionality so the
    /// softmax temperature is independent of the encoder width.
    fn logits<E: Exec>(&self, g: &E, h: Var, prototypes: &[Option<Var>]) -> Var {
        let dim = g.shape(h).1 as f32;
        let cols: Vec<Var> = prototypes
            .iter()
            .map(|proto| match proto {
                Some(p) => {
                    let diff = g.sub(h, *p);
                    g.mul_scalar(g.row_sum(g.mul(diff, diff)), -1.0 / dim)
                }
                None => {
                    let len = g.shape(h).0;
                    g.constant(fewner_tensor::Array::full(len, 1, MISSING_CLASS_LOGIT))
                }
            })
            .collect();
        g.concat_cols(&cols)
    }

    /// Episode loss: mean token cross-entropy on the query set given the
    /// support-set prototypes.
    #[allow(clippy::too_many_arguments)]
    pub fn episode_loss<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        support: &[LabeledSentence],
        query: &[LabeledSentence],
        tags: &TagSet,
        rng: &mut Rng,
    ) -> Result<Var> {
        if support.is_empty() || query.is_empty() {
            return Err(Error::InvalidConfig("empty episode".into()));
        }
        let protos = self.prototypes(g, theta, support, tags, rng);
        let mut losses = Vec::new();
        for (sent, gold) in query {
            // Tokens whose gold class has no support prototype cannot be
            // learnt from this episode; they are excluded from the loss
            // (they still count against the model at evaluation time).
            let coords: Vec<(usize, usize)> = gold
                .iter()
                .enumerate()
                .filter(|(_, &c)| protos[c].is_some())
                .map(|(t, &c)| (t, c))
                .collect();
            if coords.is_empty() {
                continue;
            }
            let h = self.encoder.hidden(g, theta, None, sent, rng);
            let logp = g.log_softmax_rows(self.logits(g, h, &protos));
            let nll = g.mul_scalar(g.gather_sum(logp, &coords), -1.0 / coords.len() as f32);
            losses.push(nll);
        }
        if losses.is_empty() {
            return Err(Error::InvalidConfig(
                "no query token has a supported gold class".into(),
            ));
        }
        let stacked = g.concat_cols(&losses);
        Ok(g.mean_all(stacked))
    }

    /// Predicts tag indices for every query sentence of one task on the
    /// gradient-free [`Infer`] executor.
    ///
    /// The support prototypes are encoded **once** per task; per-query
    /// scratch buffers are recycled between sentences.
    pub fn predict_task(
        &self,
        theta: &ParamStore,
        support: &[LabeledSentence],
        queries: &[LabeledSentence],
        tags: &TagSet,
    ) -> Vec<Vec<usize>> {
        let ex = Infer::new();
        let mut rng = Rng::new(0); // inference mode: dropout inert, rng unused
        let protos = self.prototypes(&ex, theta, support, tags, &mut rng);
        let mark = ex.mark();
        queries
            .iter()
            .map(|query| {
                let h = self.encoder.hidden(&ex, theta, None, &query.0, &mut rng);
                let logits = ex.value(self.logits(&ex, h, &protos));
                let pred = (0..logits.rows()).map(|r| logits.argmax_row(r)).collect();
                ex.reset_to(mark);
                pred
            })
            .collect()
    }

    /// Predicts tag indices for one query sentence (nearest prototype per
    /// token).
    pub fn predict(
        &self,
        theta: &ParamStore,
        support: &[LabeledSentence],
        query: &LabeledSentence,
        tags: &TagSet,
    ) -> Vec<usize> {
        self.predict_task(theta, support, std::slice::from_ref(query), tags)
            .pop()
            .expect("predict_task returns one path per query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{BackboneConfig, Conditioning, HeadKind};
    use crate::encoding::TokenEncoder;
    use crate::prep::encode_task;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_tensor::Graph;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (
        ProtoNet,
        ParamStore,
        Vec<LabeledSentence>,
        Vec<LabeledSentence>,
        TagSet,
    ) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let task = sampler.sample(&mut Rng::new(4)).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let mut rng = Rng::new(8);
        let mut store = ParamStore::new();
        let cfg = BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 0,
            slot_ctx_dim: 0,
            conditioning: Conditioning::None,
            dropout: 0.0,
            use_char_cnn: true,
            encoder: crate::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 3 },
        };
        let bb = Backbone::new(cfg, &enc, &mut store, &mut rng).unwrap();
        let (support, query) = encode_task(&enc, &task);
        (ProtoNet::new(bb), store, support, query, task.tag_set())
    }

    #[test]
    fn episode_loss_is_finite_and_positive() {
        let (pn, store, support, query, tags) = setup();
        let g = Graph::new();
        let mut rng = Rng::new(1);
        let loss = pn
            .episode_loss(&g, &store, &support, &query, &tags, &mut rng)
            .unwrap();
        let v = g.value(loss).scalar_value();
        assert!(v.is_finite() && v > 0.0, "loss {v}");
        // Gradients flow to the encoder.
        let grads = g.backward(loss).unwrap().for_store(&store);
        assert!((0..store.len()).any(|i| grads.get_at(i).is_some()));
    }

    #[test]
    fn prediction_has_sentence_length_and_valid_classes() {
        let (pn, store, support, query, tags) = setup();
        let pred = pn.predict(&store, &support, &query[0], &tags);
        assert_eq!(pred.len(), query[0].0.len());
        assert!(pred.iter().all(|&c| c < tags.len()));
    }

    #[test]
    fn training_on_one_episode_reduces_its_loss() {
        let (pn, mut store, support, query, tags) = setup();
        let mut opt = fewner_tensor::Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let g = Graph::new();
            let mut rng = Rng::new(2);
            let loss = pn
                .episode_loss(&g, &store, &support, &query, &tags, &mut rng)
                .unwrap();
            last = g.value(loss).scalar_value();
            first.get_or_insert(last);
            let grads = g.backward(loss).unwrap().for_store(&store);
            opt.step(&mut store, &grads).unwrap();
        }
        assert!(last < first.unwrap(), "{:?} -> {last}", first.unwrap());
    }

    #[test]
    fn empty_episode_is_an_error() {
        let (pn, store, _, query, tags) = setup();
        let g = Graph::new();
        let mut rng = Rng::new(3);
        assert!(pn
            .episode_loss(&g, &store, &[], &query, &tags, &mut rng)
            .is_err());
    }
}
