//! Linear-chain conditional random fields.
//!
//! The backbone's tag decoder (paper §3.2.2, Eq. 4): given per-token hidden
//! states, a CRF scores whole tag sequences with emission + transition
//! potentials, trains on the exact sequence negative log-likelihood
//! (forward algorithm, differentiated through the graph's `col_lse`), and
//! decodes with Viterbi under BIO constraints.
//!
//! Two heads are provided:
//!
//! * [`DenseCrf`] — the paper's formulation: a full `[T, T]` transition
//!   matrix and a dense emission projection for a *fixed* way-count.
//! * [`SlotSharedCrf`] — a way-agnostic head: transitions are parameterised
//!   by BIO *role* (O→B, B→I-same, …) and emissions by shared B/I scorers
//!   against learned slot embeddings, so a model trained with 3, 10 or 15
//!   ways can still be evaluated 5-way. The paper's "training way" ablation
//!   (Table 5) requires exactly this property.

use fewner_tensor::nn::Linear;
use fewner_tensor::{Array, Exec, KernelBackend, ParamId, ParamStore, Var};
use fewner_text::{Tag, TagSet};
use fewner_util::Rng;

/// Large negative used to forbid transitions without destroying gradients.
const FORBIDDEN: f32 = -1.0e4;

/// A CRF head: produces emissions from hidden states, scores gold
/// sequences, and decodes.
///
/// All methods are generic over the executor, so the same head definition
/// serves tape-recorded training and gradient-free inference.
pub trait CrfHead {
    /// Emission scores `[L, 2N+1]` from hidden states `[L, H]`.
    fn emissions<E: Exec>(&self, g: &E, store: &ParamStore, h: Var, tags: &TagSet) -> Var;

    /// The transition matrix (plus start vector) for an N-way tag set, as
    /// graph nodes so training differentiates through them.
    fn transitions<E: Exec>(&self, g: &E, store: &ParamStore, tags: &TagSet) -> (Var, Var);

    /// Sequence negative log-likelihood of `gold` (tag indices) — the
    /// paper's `L = −log p(y|h)`.
    fn nll<E: Exec>(
        &self,
        g: &E,
        store: &ParamStore,
        h: Var,
        gold: &[usize],
        tags: &TagSet,
    ) -> Var {
        let emissions = self.emissions(g, store, h, tags);
        let (trans, start) = self.transitions(g, store, tags);
        crf_nll(g, emissions, trans, start, gold)
    }

    /// Viterbi decode under BIO constraints.
    fn decode<E: Exec>(&self, g: &E, store: &ParamStore, h: Var, tags: &TagSet) -> Vec<usize> {
        let emissions = self.emissions(g, store, h, tags);
        let (trans, start) = self.transitions(g, store, tags);
        viterbi(&g.value(emissions), &g.value(trans), &g.value(start), tags)
    }
}

/// Forward-algorithm NLL over explicit emission/transition graph nodes.
///
/// `alpha_t[j] = lse_i(alpha_{t-1}[i] + trans[i, j]) + emit_t[j]`, with
/// `alpha_0 = start + emit_0`; the loss is `log Z − score(gold)`.
pub fn crf_nll<E: Exec>(g: &E, emissions: Var, trans: Var, start: Var, gold: &[usize]) -> Var {
    let len = g.shape(emissions).0;
    assert_eq!(len, gold.len(), "gold length mismatch");
    assert!(len > 0, "empty sequence");

    let mut alpha = g.add(g.row(emissions, 0), start);
    for t in 1..len {
        // [T, 1] + [T, T] broadcast: column j gets alpha[i] + trans[i, j].
        let m = g.add(g.transpose(alpha), trans);
        alpha = g.add(g.col_lse(m), g.row(emissions, t));
    }
    let log_z = g.lse_all(alpha);

    let emit_coords: Vec<(usize, usize)> = gold.iter().enumerate().map(|(t, &y)| (t, y)).collect();
    let trans_coords: Vec<(usize, usize)> = gold.windows(2).map(|w| (w[0], w[1])).collect();
    let mut score = g.add(
        g.gather_sum(emissions, &emit_coords),
        g.gather_sum(start, &[(0, gold[0])]),
    );
    if !trans_coords.is_empty() {
        score = g.add(score, g.gather_sum(trans, &trans_coords));
    }
    g.sub(log_z, score)
}

/// Constrained Viterbi decoding on plain arrays.
#[allow(clippy::needless_range_loop)]
pub fn viterbi(emissions: &Array, trans: &Array, start: &Array, tags: &TagSet) -> Vec<usize> {
    let (len, n_tags) = emissions.shape();
    assert_eq!(trans.shape(), (n_tags, n_tags));
    assert!(len > 0);

    let allowed_start: Vec<bool> = (0..n_tags)
        .map(|j| tags.allowed_at_start(tags.tag(j)))
        .collect();
    let mut score: Vec<f32> = (0..n_tags)
        .map(|j| {
            let base = emissions.at(0, j) + start.at(0, j);
            if allowed_start[j] {
                base
            } else {
                base + FORBIDDEN
            }
        })
        .collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(len);

    for t in 1..len {
        let mut next = vec![f32::NEG_INFINITY; n_tags];
        let mut ptr = vec![0usize; n_tags];
        for j in 0..n_tags {
            let to = tags.tag(j);
            for i in 0..n_tags {
                let mut s = score[i] + trans.at(i, j);
                if !tags.allowed(tags.tag(i), to) {
                    s += FORBIDDEN;
                }
                if s > next[j] {
                    next[j] = s;
                    ptr[j] = i;
                }
            }
            next[j] += emissions.at(t, j);
        }
        score = next;
        back.push(ptr);
    }

    let mut best = 0usize;
    for j in 1..n_tags {
        if score[j] > score[best] {
            best = j;
        }
    }
    let mut path = vec![best; len];
    for t in (1..len).rev() {
        path[t - 1] = back[t - 1][path[t]];
    }
    path
}

/// [`viterbi`] with an explicit kernel backend.
///
/// The blocked variant walks the transition matrix row-major (i-outer) with
/// the BIO constraint pre-resolved into a boolean mask, but keeps the
/// scalar path's bracketing — `(score[i] + trans[i, j]) + FORBIDDEN` — and
/// its first-max-wins tie rule (strict `>`, candidates visited in ascending
/// `i`), so both backends return the identical path, bitwise. Pinned by the
/// cross-backend decode tests.
pub fn viterbi_with(
    backend: KernelBackend,
    emissions: &Array,
    trans: &Array,
    start: &Array,
    tags: &TagSet,
) -> Vec<usize> {
    match backend {
        KernelBackend::Scalar => viterbi(emissions, trans, start, tags),
        KernelBackend::Blocked => viterbi_blocked(emissions, trans, start, tags),
    }
}

#[allow(clippy::needless_range_loop)]
fn viterbi_blocked(emissions: &Array, trans: &Array, start: &Array, tags: &TagSet) -> Vec<usize> {
    let (len, n_tags) = emissions.shape();
    assert_eq!(trans.shape(), (n_tags, n_tags));
    assert!(len > 0);

    // Resolve the tag-pair constraint once instead of per (t, i, j).
    let allowed: Vec<bool> = (0..n_tags)
        .flat_map(|i| (0..n_tags).map(move |j| tags.allowed(tags.tag(i), tags.tag(j))))
        .collect();
    let mut score: Vec<f32> = (0..n_tags)
        .map(|j| {
            let base = emissions.at(0, j) + start.at(0, j);
            if tags.allowed_at_start(tags.tag(j)) {
                base
            } else {
                base + FORBIDDEN
            }
        })
        .collect();
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(len);

    for t in 1..len {
        let mut next = vec![f32::NEG_INFINITY; n_tags];
        let mut ptr = vec![0usize; n_tags];
        // i-outer keeps `trans` reads contiguous; updates still happen in
        // ascending i for every j, which is what first-max-wins needs.
        for i in 0..n_tags {
            let si = score[i];
            let tr = trans.row(i);
            let mask = &allowed[i * n_tags..(i + 1) * n_tags];
            for j in 0..n_tags {
                let mut s = si + tr[j];
                if !mask[j] {
                    s += FORBIDDEN;
                }
                if s > next[j] {
                    next[j] = s;
                    ptr[j] = i;
                }
            }
        }
        let em = emissions.row(t);
        for j in 0..n_tags {
            next[j] += em[j];
        }
        score = next;
        back.push(ptr);
    }

    let mut best = 0usize;
    for j in 1..n_tags {
        if score[j] > score[best] {
            best = j;
        }
    }
    let mut path = vec![best; len];
    for t in (1..len).rev() {
        path[t - 1] = back[t - 1][path[t]];
    }
    path
}

/// The paper's CRF (Eq. 4): dense emission projection + full transition
/// matrix for a fixed way-count.
#[derive(Debug, Clone)]
pub struct DenseCrf {
    emission: Linear,
    trans: ParamId,
    start: ParamId,
    n_tags: usize,
}

impl DenseCrf {
    /// Registers parameters for an `n_ways`-way tag space over hidden
    /// states of width `hidden`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        hidden: usize,
        n_ways: usize,
        rng: &mut Rng,
    ) -> DenseCrf {
        let n_tags = 2 * n_ways + 1;
        DenseCrf {
            emission: Linear::new(
                store,
                &format!("{prefix}.emission"),
                hidden,
                n_tags,
                true,
                rng,
            ),
            trans: store.add(
                format!("{prefix}.trans"),
                Array::uniform(n_tags, n_tags, -0.1, 0.1, rng),
            ),
            start: store.add(
                format!("{prefix}.start"),
                Array::uniform(1, n_tags, -0.1, 0.1, rng),
            ),
            n_tags,
        }
    }

    /// The fixed tag-space size.
    pub fn n_tags(&self) -> usize {
        self.n_tags
    }
}

impl CrfHead for DenseCrf {
    fn emissions<E: Exec>(&self, g: &E, store: &ParamStore, h: Var, tags: &TagSet) -> Var {
        assert_eq!(
            tags.len(),
            self.n_tags,
            "DenseCrf built for {} tags, asked for {}",
            self.n_tags,
            tags.len()
        );
        self.emission.apply(g, store, h)
    }

    fn transitions<E: Exec>(&self, g: &E, store: &ParamStore, _tags: &TagSet) -> (Var, Var) {
        (g.param(store, self.trans), g.param(store, self.start))
    }
}

/// BIO transition roles for the slot-shared head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    OO,
    OB,
    BiSame,
    BbSame,
    BbDiff,
    BO,
    IiSame,
    IbSame,
    IbDiff,
    IO,
    Forbidden,
}

fn role_of(from: Tag, to: Tag) -> Role {
    match (from, to) {
        (Tag::O, Tag::O) => Role::OO,
        (Tag::O, Tag::B(_)) => Role::OB,
        (Tag::O, Tag::I(_)) => Role::Forbidden,
        (Tag::B(a), Tag::I(b)) if a == b => Role::BiSame,
        (Tag::B(_), Tag::I(_)) => Role::Forbidden,
        (Tag::B(a), Tag::B(b)) if a == b => Role::BbSame,
        (Tag::B(_), Tag::B(_)) => Role::BbDiff,
        (Tag::B(_), Tag::O) => Role::BO,
        (Tag::I(a), Tag::I(b)) if a == b => Role::IiSame,
        (Tag::I(_), Tag::I(_)) => Role::Forbidden,
        (Tag::I(a), Tag::B(b)) if a == b => Role::IbSame,
        (Tag::I(_), Tag::B(_)) => Role::IbDiff,
        (Tag::I(_), Tag::O) => Role::IO,
    }
}

const N_ROLES: usize = 10;

fn role_index(r: Role) -> Option<usize> {
    match r {
        Role::OO => Some(0),
        Role::OB => Some(1),
        Role::BiSame => Some(2),
        Role::BbSame => Some(3),
        Role::BbDiff => Some(4),
        Role::BO => Some(5),
        Role::IiSame => Some(6),
        Role::IbSame => Some(7),
        Role::IbDiff => Some(8),
        Role::IO => Some(9),
        Role::Forbidden => None,
    }
}

/// Way-agnostic CRF head with slot-shared emissions and role-based
/// transitions (see module docs).
#[derive(Debug, Clone)]
pub struct SlotSharedCrf {
    w_b: Linear,
    w_i: Linear,
    w_o: Linear,
    slot_emb: ParamId,
    roles: ParamId,
    start_o: ParamId,
    start_b: ParamId,
    max_slots: usize,
    slot_dim: usize,
}

impl SlotSharedCrf {
    /// Registers parameters supporting up to `max_slots` class slots.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        hidden: usize,
        slot_dim: usize,
        max_slots: usize,
        rng: &mut Rng,
    ) -> SlotSharedCrf {
        SlotSharedCrf {
            w_b: Linear::new(store, &format!("{prefix}.w_b"), hidden, slot_dim, true, rng),
            w_i: Linear::new(store, &format!("{prefix}.w_i"), hidden, slot_dim, true, rng),
            w_o: Linear::new(store, &format!("{prefix}.w_o"), hidden, 1, true, rng),
            slot_emb: store.add(
                format!("{prefix}.slots"),
                Array::normal(max_slots, slot_dim, 0.5, rng),
            ),
            roles: store.add(
                format!("{prefix}.roles"),
                Array::uniform(N_ROLES, 1, -0.1, 0.1, rng),
            ),
            start_o: store.add(format!("{prefix}.start_o"), Array::zeros(1, 1)),
            start_b: store.add(format!("{prefix}.start_b"), Array::zeros(1, 1)),
            max_slots,
            slot_dim,
        }
    }

    /// The largest way-count this head supports.
    pub fn max_slots(&self) -> usize {
        self.max_slots
    }

    /// Slot-embedding dimensionality.
    pub fn slot_dim(&self) -> usize {
        self.slot_dim
    }
}

impl CrfHead for SlotSharedCrf {
    fn emissions<E: Exec>(&self, g: &E, store: &ParamStore, h: Var, tags: &TagSet) -> Var {
        let n = tags.n_ways();
        assert!(
            n <= self.max_slots,
            "SlotSharedCrf supports {} slots, asked for {n}",
            self.max_slots
        );
        // [L, d] features for B and I roles; slot scores via slot embeddings.
        let fb = self.w_b.apply(g, store, h);
        let fi = self.w_i.apply(g, store, h);
        let slots = g.param(store, self.slot_emb);
        let active = g.gather_rows(slots, &(0..n).collect::<Vec<_>>());
        let eb = g.matmul(fb, g.transpose(active)); // [L, n]
        let ei = g.matmul(fi, g.transpose(active)); // [L, n]
        let eo = self.w_o.apply(g, store, h); // [L, 1]

        // Interleave columns as [O, B-0, I-0, B-1, I-1, …].
        let mut cols: Vec<Var> = Vec::with_capacity(2 * n + 1);
        cols.push(eo);
        for s in 0..n {
            cols.push(g.slice_cols(eb, s, 1));
            cols.push(g.slice_cols(ei, s, 1));
        }
        g.concat_cols(&cols)
    }

    fn transitions<E: Exec>(&self, g: &E, store: &ParamStore, tags: &TagSet) -> (Var, Var) {
        let t = tags.len();
        let roles = g.param(store, self.roles);
        // Gather one role score per (from, to) pair; forbidden pairs pull
        // role 0 and get masked by a large negative constant instead.
        let mut gather_idx = Vec::with_capacity(t * t);
        let mut mask = Array::zeros(t, t);
        for i in 0..t {
            for j in 0..t {
                match role_index(role_of(tags.tag(i), tags.tag(j))) {
                    Some(r) => gather_idx.push(r),
                    None => {
                        gather_idx.push(0);
                        *mask.at_mut(i, j) = FORBIDDEN;
                    }
                }
            }
        }
        let flat = g.gather_rows(roles, &gather_idx); // [t*t, 1]
        let trans = g.add(g.reshape(flat, t, t), g.constant(mask));

        // Start vector: O gets start_o, B-* start_b, I-* forbidden.
        let so = g.param(store, self.start_o);
        let sb = g.param(store, self.start_b);
        let forbidden = g.constant(Array::scalar(FORBIDDEN));
        let mut cols = Vec::with_capacity(t);
        for j in 0..t {
            cols.push(match tags.tag(j) {
                Tag::O => so,
                Tag::B(_) => sb,
                Tag::I(_) => forbidden,
            });
        }
        (trans, g.concat_cols(&cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fewner_tensor::Graph;

    fn setup(n_ways: usize, _hidden: usize) -> (ParamStore, Rng, TagSet) {
        (ParamStore::new(), Rng::new(3), TagSet::new(n_ways).unwrap())
    }

    /// Brute-force log partition by enumerating all tag sequences.
    fn brute_log_z(emissions: &Array, trans: &Array, start: &Array) -> f64 {
        let (len, t) = emissions.shape();
        let mut seqs: Vec<Vec<usize>> = vec![vec![]];
        for _ in 0..len {
            let mut next = Vec::new();
            for s in &seqs {
                for j in 0..t {
                    let mut s2 = s.clone();
                    s2.push(j);
                    next.push(s2);
                }
            }
            seqs = next;
        }
        let mut scores = Vec::new();
        for s in &seqs {
            let mut sc = start.at(0, s[0]) as f64 + emissions.at(0, s[0]) as f64;
            for t_idx in 1..len {
                sc +=
                    trans.at(s[t_idx - 1], s[t_idx]) as f64 + emissions.at(t_idx, s[t_idx]) as f64;
            }
            scores.push(sc);
        }
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max + scores.iter().map(|s| (s - max).exp()).sum::<f64>().ln()
    }

    #[test]
    fn forward_algorithm_matches_brute_force() {
        let (_, mut rng, _) = setup(1, 4);
        let emissions = Array::uniform(4, 3, -1.0, 1.0, &mut rng);
        let trans = Array::uniform(3, 3, -1.0, 1.0, &mut rng);
        let start = Array::uniform(1, 3, -1.0, 1.0, &mut rng);
        let gold = vec![0usize, 1, 2, 0];

        let g = Graph::new();
        let e = g.constant(emissions.clone());
        let t = g.constant(trans.clone());
        let s = g.constant(start.clone());
        let nll = crf_nll(&g, e, t, s, &gold);

        let log_z = brute_log_z(&emissions, &trans, &start);
        let mut gold_score = start.at(0, 0) as f64 + emissions.at(0, 0) as f64;
        gold_score += trans.at(0, 1) as f64 + emissions.at(1, 1) as f64;
        gold_score += trans.at(1, 2) as f64 + emissions.at(2, 2) as f64;
        gold_score += trans.at(2, 0) as f64 + emissions.at(3, 0) as f64;
        let expected = log_z - gold_score;
        let got = g.value(nll).scalar_value() as f64;
        assert!((got - expected).abs() < 1e-3, "{got} vs {expected}");
        assert!(got >= -1e-4, "NLL must be non-negative: {got}");
    }

    #[test]
    fn viterbi_matches_exhaustive_argmax() {
        let (_, mut rng, tags) = setup(1, 4); // 3 tags: O, B-0, I-0
        for trial in 0..20 {
            let mut r = Rng::new(trial);
            let emissions = Array::uniform(4, 3, -1.0, 1.0, &mut r);
            let trans = Array::uniform(3, 3, -1.0, 1.0, &mut r);
            let start = Array::uniform(1, 3, -1.0, 1.0, &mut r);
            let path = viterbi(&emissions, &trans, &start, &tags);

            // Exhaustive search over *valid* sequences.
            let mut best_score = f64::NEG_INFINITY;
            let mut best: Vec<usize> = vec![];
            let t = 3usize;
            for a in 0..t {
                for b in 0..t {
                    for c in 0..t {
                        for d in 0..t {
                            let seq = [a, b, c, d];
                            if !tags.allowed_at_start(tags.tag(a)) {
                                continue;
                            }
                            if seq
                                .windows(2)
                                .any(|w| !tags.allowed(tags.tag(w[0]), tags.tag(w[1])))
                            {
                                continue;
                            }
                            let mut sc = start.at(0, a) as f64 + emissions.at(0, a) as f64;
                            for i in 1..4 {
                                sc += trans.at(seq[i - 1], seq[i]) as f64
                                    + emissions.at(i, seq[i]) as f64;
                            }
                            if sc > best_score {
                                best_score = sc;
                                best = seq.to_vec();
                            }
                        }
                    }
                }
            }
            assert_eq!(path, best, "trial {trial}");
        }
        let _ = rng.next_u64();
    }

    #[test]
    fn viterbi_respects_bio_constraints() {
        let tags = TagSet::new(2).unwrap();
        let mut rng = Rng::new(5);
        for _ in 0..20 {
            let emissions = Array::uniform(6, 5, -2.0, 2.0, &mut rng);
            let trans = Array::uniform(5, 5, -1.0, 1.0, &mut rng);
            let start = Array::uniform(1, 5, -1.0, 1.0, &mut rng);
            let path = viterbi(&emissions, &trans, &start, &tags);
            let decoded: Vec<Tag> = path.iter().map(|&i| tags.tag(i)).collect();
            fewner_text::validate_tags(&decoded, &tags).unwrap();
        }
    }

    #[test]
    fn viterbi_backends_agree_including_exact_score_ties() {
        let tags = TagSet::new(2).unwrap();
        let mut rng = Rng::new(17);
        for trial in 0..40 {
            let emissions = Array::uniform(7, 5, -2.0, 2.0, &mut rng);
            // Constant transitions/starts create massive score ties between
            // label paths: the decoded path is then decided purely by the
            // first-max-wins rule, which both backends must share.
            let (trans, start) = if trial % 2 == 0 {
                (
                    Array::uniform(5, 5, -1.0, 1.0, &mut rng),
                    Array::uniform(1, 5, -1.0, 1.0, &mut rng),
                )
            } else {
                (Array::zeros(5, 5), Array::zeros(1, 5))
            };
            let scalar = viterbi_with(KernelBackend::Scalar, &emissions, &trans, &start, &tags);
            let blocked = viterbi_with(KernelBackend::Blocked, &emissions, &trans, &start, &tags);
            assert_eq!(scalar, blocked, "trial {trial}");
            assert_eq!(
                scalar,
                viterbi(&emissions, &trans, &start, &tags),
                "viterbi_with(Scalar) must be the plain scalar path"
            );
        }
        // Fully tied emissions as well: every valid path scores identically.
        let emissions = Array::zeros(5, 5);
        let trans = Array::zeros(5, 5);
        let start = Array::zeros(1, 5);
        let scalar = viterbi_with(KernelBackend::Scalar, &emissions, &trans, &start, &tags);
        let blocked = viterbi_with(KernelBackend::Blocked, &emissions, &trans, &start, &tags);
        assert_eq!(scalar, blocked, "all-tied lattice");
    }

    #[test]
    fn dense_crf_trains_to_fit_a_sequence() {
        let (mut store, mut rng, tags) = setup(2, 6);
        let crf = DenseCrf::new(&mut store, "crf", 6, 2, &mut rng);
        let h_fixed = Array::uniform(5, 6, -1.0, 1.0, &mut rng);
        let gold = vec![0usize, 1, 2, 0, 3];
        let mut opt = fewner_tensor::Sgd::new(0.5);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let g = Graph::new();
            let h = g.constant(h_fixed.clone());
            let nll = crf.nll(&g, &store, h, &gold, &tags);
            last = g.value(nll).scalar_value();
            first.get_or_insert(last);
            let grads = g.backward(nll).unwrap().for_store(&store);
            opt.step(&mut store, &grads).unwrap();
        }
        assert!(last < first.unwrap() * 0.2, "{} -> {last}", first.unwrap());
        // And decoding recovers the fitted sequence.
        let g = Graph::new();
        let h = g.constant(h_fixed);
        let path = crf.decode(&g, &store, h, &tags);
        assert_eq!(path, gold);
    }

    #[test]
    fn slot_shared_crf_is_way_agnostic() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(9);
        let crf = SlotSharedCrf::new(&mut store, "ss", 6, 8, 16, &mut rng);
        let g = Graph::new();
        let h = g.constant(Array::uniform(4, 6, -1.0, 1.0, &mut rng));
        for n in [3usize, 5, 10, 15] {
            let tags = TagSet::new(n).unwrap();
            let e = crf.emissions(&g, &store, h, &tags);
            assert_eq!(g.shape(e), (4, 2 * n + 1));
            let (trans, start) = crf.transitions(&g, &store, &tags);
            assert_eq!(g.shape(trans), (2 * n + 1, 2 * n + 1));
            assert_eq!(g.shape(start), (1, 2 * n + 1));
            // Forbidden transitions carry the mask.
            let tv = g.value(trans);
            let o_to_i0 = tv.at(0, 2);
            assert!(o_to_i0 < FORBIDDEN / 2.0, "O->I must be forbidden");
        }
    }

    #[test]
    fn slot_shared_crf_trains_and_decodes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::new(11);
        let crf = SlotSharedCrf::new(&mut store, "ss", 6, 8, 8, &mut rng);
        let tags = TagSet::new(2).unwrap();
        let h_fixed = Array::uniform(5, 6, -1.0, 1.0, &mut rng);
        let gold = vec![0usize, 1, 2, 0, 3];
        let mut opt = fewner_tensor::Sgd::new(0.5);
        for _ in 0..80 {
            let g = Graph::new();
            let h = g.constant(h_fixed.clone());
            let nll = crf.nll(&g, &store, h, &gold, &tags);
            let grads = g.backward(nll).unwrap().for_store(&store);
            opt.step(&mut store, &grads).unwrap();
        }
        let g = Graph::new();
        let h = g.constant(h_fixed);
        assert_eq!(crf.decode(&g, &store, h, &tags), gold);
    }

    #[test]
    fn role_table_is_complete() {
        // Every (from, to) pair maps to a role or Forbidden, consistently
        // with TagSet::allowed.
        let tags = TagSet::new(3).unwrap();
        for i in 0..tags.len() {
            for j in 0..tags.len() {
                let (from, to) = (tags.tag(i), tags.tag(j));
                let forbidden = role_index(role_of(from, to)).is_none();
                assert_eq!(
                    forbidden,
                    !tags.allowed(from, to),
                    "role/allowed disagree on {from:?} -> {to:?}"
                );
            }
        }
    }
}
