//! SNAIL baseline (paper §4.1.2; Mishra et al.).
//!
//! SNAIL combines temporal convolutions (aggregating past experience) with
//! causal attention (pinpointing specific memories). We adapt it to
//! sequence labeling the way the paper's experimental setup implies: the
//! support set is flattened into a *memory* of (token feature, gold-label
//! embedding) pairs; each query token attends over that memory, a
//! width-2 causal temporal convolution aggregates the query sentence's own
//! left context, and a linear head emits per-token class logits. Training
//! is episodic (no inner loop, no test-time gradient steps).

use fewner_tensor::nn::{Embedding, Linear};
use fewner_tensor::{Array, Exec, Infer, ParamStore, Var};
use fewner_text::TagSet;
use fewner_util::{Error, Result, Rng};

use crate::backbone::Backbone;
use crate::prep::LabeledSentence;

/// SNAIL head hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SnailConfig {
    /// Attention key/query width.
    pub attn_dim: usize,
    /// Attention value width.
    pub value_dim: usize,
    /// Temporal-convolution filters.
    pub tc_filters: usize,
    /// Label-embedding width.
    pub label_dim: usize,
    /// Cross-entropy weight multiplier for non-`O` tokens. Token-level
    /// classification over BIO tags is dominated by `O`; without
    /// up-weighting entity tokens SNAIL collapses to all-`O` on dense
    /// corpora (a standard class-imbalance correction).
    pub entity_weight: f32,
    /// Fixed way-count (the classifier head is sized `2N + 1`).
    pub n_ways: usize,
}

impl SnailConfig {
    /// Defaults matched to the scaled backbone.
    pub fn default_for(n_ways: usize) -> SnailConfig {
        SnailConfig {
            attn_dim: 24,
            value_dim: 24,
            tc_filters: 24,
            label_dim: 12,
            entity_weight: 3.0,
            n_ways,
        }
    }
}

/// SNAIL: shared encoder + attention/TC labeling head.
pub struct Snail {
    /// Shared encoder (conditioning-free backbone).
    pub encoder: Backbone,
    cfg: SnailConfig,
    label_emb: Embedding,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    tc: Linear,
    out: Linear,
}

impl Snail {
    /// Registers head parameters on top of an encoder backbone.
    pub fn new(
        encoder: Backbone,
        cfg: SnailConfig,
        store: &mut ParamStore,
        rng: &mut Rng,
    ) -> Snail {
        let h = 2 * encoder.config().hidden;
        let n_tags = 2 * cfg.n_ways + 1;
        Snail {
            label_emb: Embedding::new(store, "snail.labels", n_tags, cfg.label_dim, rng),
            wq: Linear::new(store, "snail.wq", h, cfg.attn_dim, false, rng),
            wk: Linear::new(store, "snail.wk", h, cfg.attn_dim, false, rng),
            wv: Linear::new(
                store,
                "snail.wv",
                h + cfg.label_dim,
                cfg.value_dim,
                false,
                rng,
            ),
            tc: Linear::new(store, "snail.tc", 2 * h, cfg.tc_filters, true, rng),
            out: Linear::new(
                store,
                "snail.out",
                h + cfg.value_dim + cfg.tc_filters,
                n_tags,
                true,
                rng,
            ),
            encoder,
            cfg,
        }
    }

    /// The head configuration.
    pub fn config(&self) -> &SnailConfig {
        &self.cfg
    }

    /// Builds the support memory: keys `[M, h]`, values `[M, h+label]`.
    fn memory<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        support: &[LabeledSentence],
        rng: &mut Rng,
    ) -> (Var, Var) {
        let mut key_rows = Vec::new();
        let mut val_rows = Vec::new();
        for (sent, gold) in support {
            let h = self.encoder.hidden(g, theta, None, sent, rng);
            let labels = self.label_emb.apply(g, theta, gold);
            key_rows.push(h);
            val_rows.push(g.concat_cols(&[h, labels]));
        }
        (g.concat_rows(&key_rows), g.concat_rows(&val_rows))
    }

    /// Per-token logits `[L, 2N+1]` for one query sentence given a memory.
    fn query_logits<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        memory: (Var, Var),
        sent: &crate::encoding::EncodedSentence,
        rng: &mut Rng,
    ) -> Var {
        let (mem_keys, mem_vals) = memory;
        let h = self.encoder.hidden(g, theta, None, sent, rng);

        // Causal attention over the support memory.
        let q = self.wq.apply(g, theta, h);
        let k = self.wk.apply(g, theta, mem_keys);
        let scores = g.mul_scalar(
            g.matmul(q, g.transpose(k)),
            1.0 / (self.cfg.attn_dim as f32).sqrt(),
        );
        let attn = g.softmax_rows(scores);
        let ctx = g.matmul(attn, self.wv.apply(g, theta, mem_vals));

        // Width-2 causal temporal convolution over the query sentence: the
        // input is left-padded so position t sees tokens t-1 and t.
        let len = g.shape(h).0;
        let hdim = g.shape(h).1;
        let padded = g.concat_rows(&[g.constant(Array::zeros(1, hdim)), h]);
        let windows = g.unfold(padded, 2); // [L, 2h]
        debug_assert_eq!(g.shape(windows).0, len);
        let tc = g.relu(self.tc.apply(g, theta, windows));

        self.out.apply(g, theta, g.concat_cols(&[h, ctx, tc]))
    }

    /// Episode loss: mean token cross-entropy on the query set.
    #[allow(clippy::too_many_arguments)]
    pub fn episode_loss<E: Exec>(
        &self,
        g: &E,
        theta: &ParamStore,
        support: &[LabeledSentence],
        query: &[LabeledSentence],
        tags: &TagSet,
        rng: &mut Rng,
    ) -> Result<Var> {
        if support.is_empty() || query.is_empty() {
            return Err(Error::InvalidConfig("empty episode".into()));
        }
        if tags.len() != 2 * self.cfg.n_ways + 1 {
            return Err(Error::InvalidConfig(format!(
                "SNAIL head built for {} ways, task has {}",
                self.cfg.n_ways,
                tags.n_ways()
            )));
        }
        let memory = self.memory(g, theta, support, rng);
        let mut losses = Vec::new();
        for (sent, gold) in query {
            let logits = self.query_logits(g, theta, memory, sent, rng);
            let logp = g.log_softmax_rows(logits);
            // Class-weighted token cross-entropy: entity tokens count
            // `entity_weight` times as much as `O` tokens.
            let o_coords: Vec<(usize, usize)> = gold
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == 0)
                .map(|(t, &c)| (t, c))
                .collect();
            let e_coords: Vec<(usize, usize)> = gold
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(t, &c)| (t, c))
                .collect();
            let w = self.cfg.entity_weight;
            let total_weight = o_coords.len() as f32 + w * e_coords.len() as f32;
            let mut weighted = g.scalar(0.0);
            if !o_coords.is_empty() {
                weighted = g.add(weighted, g.gather_sum(logp, &o_coords));
            }
            if !e_coords.is_empty() {
                weighted = g.add(weighted, g.mul_scalar(g.gather_sum(logp, &e_coords), w));
            }
            losses.push(g.mul_scalar(weighted, -1.0 / total_weight));
        }
        let stacked = g.concat_cols(&losses);
        Ok(g.mean_all(stacked))
    }

    /// Predicts tag indices for every query sentence of one task on the
    /// gradient-free [`Infer`] executor.
    ///
    /// The support memory (keys and values) is encoded **once** per task;
    /// per-query scratch buffers are recycled between sentences.
    pub fn predict_task(
        &self,
        theta: &ParamStore,
        support: &[LabeledSentence],
        queries: &[LabeledSentence],
        _tags: &TagSet,
    ) -> Vec<Vec<usize>> {
        let ex = Infer::new();
        let mut rng = Rng::new(0); // inference mode: dropout inert, rng unused
        let memory = self.memory(&ex, theta, support, &mut rng);
        let mark = ex.mark();
        queries
            .iter()
            .map(|query| {
                let logits = ex.value(self.query_logits(&ex, theta, memory, &query.0, &mut rng));
                let pred = (0..logits.rows()).map(|r| logits.argmax_row(r)).collect();
                ex.reset_to(mark);
                pred
            })
            .collect()
    }

    /// Predicts tag indices for one query sentence.
    pub fn predict(
        &self,
        theta: &ParamStore,
        support: &[LabeledSentence],
        query: &LabeledSentence,
        tags: &TagSet,
    ) -> Vec<usize> {
        self.predict_task(theta, support, std::slice::from_ref(query), tags)
            .pop()
            .expect("predict_task returns one path per query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backbone::{BackboneConfig, Conditioning, HeadKind};
    use crate::encoding::TokenEncoder;
    use crate::prep::encode_task;
    use fewner_corpus::{split_types, DatasetProfile};
    use fewner_episode::EpisodeSampler;
    use fewner_tensor::Graph;
    use fewner_text::embed::EmbeddingSpec;

    fn setup() -> (
        Snail,
        ParamStore,
        Vec<LabeledSentence>,
        Vec<LabeledSentence>,
        TagSet,
    ) {
        let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
        let split = split_types(&d, (8, 3, 5), 1).unwrap();
        let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
        let task = sampler.sample(&mut Rng::new(4)).unwrap();
        let enc = TokenEncoder::build(
            &[&d],
            &EmbeddingSpec {
                dim: 20,
                ..EmbeddingSpec::default()
            },
            4,
        );
        let mut rng = Rng::new(8);
        let mut store = ParamStore::new();
        let cfg = BackboneConfig {
            word_dim: 20,
            char_dim: 8,
            char_filters: 6,
            char_widths: vec![2, 3],
            hidden: 10,
            phi_dim: 0,
            slot_ctx_dim: 0,
            conditioning: Conditioning::None,
            dropout: 0.0,
            use_char_cnn: true,
            encoder: crate::backbone::EncoderKind::BiGru,
            head: HeadKind::Dense { n_ways: 3 },
        };
        let bb = Backbone::new(cfg, &enc, &mut store, &mut rng).unwrap();
        let snail = Snail::new(bb, SnailConfig::default_for(3), &mut store, &mut rng);
        let (support, query) = encode_task(&enc, &task);
        (snail, store, support, query, task.tag_set())
    }

    #[test]
    fn loss_is_finite_and_gradients_reach_the_head() {
        let (m, store, support, query, tags) = setup();
        let g = Graph::new();
        let mut rng = Rng::new(1);
        let loss = m
            .episode_loss(&g, &store, &support, &query, &tags, &mut rng)
            .unwrap();
        assert!(g.value(loss).scalar_value().is_finite());
        let grads = g.backward(loss).unwrap().for_store(&store);
        let head_w = store.get("snail.out.w").unwrap();
        assert!(grads.get(head_w).is_some());
        let attn_w = store.get("snail.wq.w").unwrap();
        assert!(grads.get(attn_w).is_some());
    }

    #[test]
    fn predictions_are_valid_classes() {
        let (m, store, support, query, tags) = setup();
        let pred = m.predict(&store, &support, &query[0], &tags);
        assert_eq!(pred.len(), query[0].0.len());
        assert!(pred.iter().all(|&c| c < tags.len()));
    }

    #[test]
    fn episode_training_reduces_loss() {
        let (m, mut store, support, query, tags) = setup();
        let mut opt = fewner_tensor::Adam::new(0.01);
        let (mut first, mut last) = (None, 0.0);
        for _ in 0..20 {
            let g = Graph::new();
            let mut rng = Rng::new(2);
            let loss = m
                .episode_loss(&g, &store, &support, &query, &tags, &mut rng)
                .unwrap();
            last = g.value(loss).scalar_value();
            first.get_or_insert(last);
            let grads = g.backward(loss).unwrap().for_store(&store);
            opt.step(&mut store, &grads).unwrap();
        }
        assert!(last < first.unwrap());
    }

    #[test]
    fn way_mismatch_is_rejected() {
        let (m, store, support, query, _) = setup();
        let g = Graph::new();
        let mut rng = Rng::new(3);
        let wrong = TagSet::new(5).unwrap();
        assert!(m
            .episode_loss(&g, &store, &support, &query, &wrong, &mut rng)
            .is_err());
    }
}
