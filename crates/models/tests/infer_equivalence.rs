//! Model-level executor equivalence: for every architecture in the paper's
//! tables — the conditioned backbone (FEWNER; also MAML's and FineTune's
//! unconditioned variant), ProtoNet, SNAIL and the frozen-LM baselines —
//! the gradient-free [`Infer`] executor must produce **bitwise identical**
//! forward values and identical decoded paths to an evaluation-mode tape
//! ([`Graph::eval`]). All paths here are dropout-off by construction: both
//! executors report [`ExecMode::Eval`], so dropout is the identity.

use fewner_corpus::{split_types, DatasetProfile};
use fewner_episode::EpisodeSampler;
use fewner_models::backbone::EncoderKind;
use fewner_models::{
    encode_task, Backbone, BackboneConfig, Conditioning, FrozenLm, HeadKind, LabeledSentence,
    ProtoNet, Snail, SnailConfig, TokenEncoder,
};
use fewner_tensor::{Array, Exec, Graph, Infer, KernelBackend, ParamStore};
use fewner_text::embed::EmbeddingSpec;
use fewner_text::TagSet;
use fewner_util::Rng;
use proptest::prelude::*;

struct Fixture {
    enc: TokenEncoder,
    support: Vec<LabeledSentence>,
    query: Vec<LabeledSentence>,
    tags: TagSet,
}

fn fixture(task_seed: u64) -> Fixture {
    let d = DatasetProfile::bionlp13cg().generate(0.05).unwrap();
    let split = split_types(&d, (8, 3, 5), 1).unwrap();
    let sampler = EpisodeSampler::new(&split.train, 3, 1, 4).unwrap();
    let task = sampler.sample(&mut Rng::new(task_seed)).unwrap();
    let enc = TokenEncoder::build(
        &[&d],
        &EmbeddingSpec {
            dim: 20,
            ..EmbeddingSpec::default()
        },
        4,
    );
    let (support, query) = encode_task(&enc, &task);
    Fixture {
        enc,
        support,
        query,
        tags: task.tag_set(),
    }
}

fn config(conditioning: Conditioning, encoder: EncoderKind, head: HeadKind) -> BackboneConfig {
    let phi = conditioning != Conditioning::None;
    BackboneConfig {
        word_dim: 20,
        char_dim: 8,
        char_filters: 6,
        char_widths: vec![2, 3],
        hidden: 10,
        phi_dim: if phi { 8 } else { 0 },
        slot_ctx_dim: if phi { 4 } else { 0 },
        conditioning,
        dropout: 0.2, // non-zero on purpose: must be inert on both executors
        use_char_cnn: true,
        encoder,
        head,
    }
}

/// A random non-zero φ so the conditioned projections actually vary.
fn random_phi(bb: &Backbone, seed: u64) -> (ParamStore, fewner_tensor::ParamId) {
    let (mut store, id) = bb.new_context();
    let mut rng = Rng::new(seed);
    let phi = Array::uniform(1, bb.config().phi_total(), -0.5, 0.5, &mut rng);
    store.set(id, phi);
    (store, id)
}

fn assert_bitwise(a: &Array, b: &Array, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

const CONDITIONINGS: [Conditioning; 3] = [
    Conditioning::None,
    Conditioning::Film,
    Conditioning::ConcatInput,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Backbone hidden states and per-sentence NLL (hidden → emissions →
    /// CRF partition) are bitwise identical on tape and arena, for every
    /// conditioning mode and both sequence encoders.
    #[test]
    fn backbone_forward_bitwise_equal(seed in 0u64..500, enc_ix in 0usize..2) {
        let lstm = enc_ix == 1;
        let f = fixture(4);
        let encoder = if lstm { EncoderKind::BiLstm } else { EncoderKind::BiGru };
        for conditioning in CONDITIONINGS {
            let mut store = ParamStore::new();
            let mut rng = Rng::new(seed);
            let bb = Backbone::new(
                config(conditioning, encoder, HeadKind::Dense { n_ways: 3 }),
                &f.enc,
                &mut store,
                &mut rng,
            )
            .unwrap();
            let phi_ctx = (conditioning != Conditioning::None)
                .then(|| random_phi(&bb, seed ^ 0x9E37));
            let (sent, gold) = &f.query[0];

            let g = Graph::eval();
            let phi = phi_ctx.as_ref().map(|(s, id)| g.param(s, *id));
            let mut r1 = Rng::new(0);
            let h_tape = g.value(bb.hidden(&g, &store, phi, sent, &mut r1));
            let nll_tape = g.value(bb.nll(&g, &store, phi, sent, gold, &f.tags, &mut r1));

            let ex = Infer::new();
            let phi = phi_ctx.as_ref().map(|(s, id)| ex.param(s, *id));
            let mut r2 = Rng::new(0);
            let h_inf = ex.value(bb.hidden(&ex, &store, phi, sent, &mut r2));
            let nll_inf = ex.value(bb.nll(&ex, &store, phi, sent, gold, &f.tags, &mut r2));

            assert_bitwise(&h_tape, &h_inf, &format!("hidden {conditioning:?}"));
            assert_bitwise(&nll_tape, &nll_inf, &format!("nll {conditioning:?}"));
        }
    }

    /// `decode_task` (context hoisted once, arena recycled between
    /// sentences) returns exactly the paths of decoding each sentence on
    /// its own, for both head kinds.
    #[test]
    fn decode_task_matches_per_sentence_decode(seed in 0u64..500, head_ix in 0usize..2) {
        let slot_shared = head_ix == 1;
        let f = fixture(4);
        let head = if slot_shared {
            HeadKind::SlotShared { slot_dim: 6, max_slots: 8 }
        } else {
            HeadKind::Dense { n_ways: 3 }
        };
        for conditioning in CONDITIONINGS {
            let mut store = ParamStore::new();
            let mut rng = Rng::new(seed);
            let bb = Backbone::new(
                config(conditioning, EncoderKind::BiGru, head),
                &f.enc,
                &mut store,
                &mut rng,
            )
            .unwrap();
            let phi_ctx = (conditioning != Conditioning::None)
                .then(|| random_phi(&bb, seed ^ 0x51ED));
            let phi = phi_ctx.as_ref().map(|(s, id)| (s, *id));
            let sents: Vec<_> = f.query.iter().map(|(s, _)| s).collect();
            let batched = bb.decode_task(&store, phi, sents.iter().copied(), &f.tags);
            for (sent, path) in sents.iter().zip(&batched) {
                assert_eq!(
                    path,
                    &bb.decode(&store, phi, sent, &f.tags),
                    "{conditioning:?} head {head:?}"
                );
            }
        }
    }

    /// Scalar and Blocked kernel backends decode identical paths for the
    /// whole task — the end-to-end face of the kernel-equivalence contract
    /// (`fewner_tensor::backend`): every forward kernel is bitwise-equal
    /// across backends and Viterbi tie-breaking is pinned, so the decoded
    /// label sequences cannot differ either.
    #[test]
    fn decode_task_identical_across_kernel_backends(seed in 0u64..500, head_ix in 0usize..2) {
        let slot_shared = head_ix == 1;
        let f = fixture(4);
        let head = if slot_shared {
            HeadKind::SlotShared { slot_dim: 6, max_slots: 8 }
        } else {
            HeadKind::Dense { n_ways: 3 }
        };
        for conditioning in CONDITIONINGS {
            let mut store = ParamStore::new();
            let mut rng = Rng::new(seed);
            let bb = Backbone::new(
                config(conditioning, EncoderKind::BiGru, head),
                &f.enc,
                &mut store,
                &mut rng,
            )
            .unwrap();
            let phi_ctx = (conditioning != Conditioning::None)
                .then(|| random_phi(&bb, seed ^ 0x7A2B));
            let phi = phi_ctx.as_ref().map(|(s, id)| (s, *id));
            let sents: Vec<_> = f.query.iter().map(|(s, _)| s).collect();
            let scalar = bb.decode_task_with(
                KernelBackend::Scalar, &store, phi, sents.iter().copied(), &f.tags,
            );
            let blocked = bb.decode_task_with(
                KernelBackend::Blocked, &store, phi, sents.iter().copied(), &f.tags,
            );
            prop_assert_eq!(scalar, blocked);
        }
    }

    /// ProtoNet: the episode loss is bitwise identical across executors and
    /// `predict_task` (prototypes hoisted, buffers recycled) matches
    /// predicting each query on its own.
    #[test]
    fn protonet_bitwise_equal(seed in 0u64..500) {
        let f = fixture(4);
        let mut store = ParamStore::new();
        let mut rng = Rng::new(seed);
        let bb = Backbone::new(
            config(Conditioning::None, EncoderKind::BiGru, HeadKind::Dense { n_ways: 3 }),
            &f.enc,
            &mut store,
            &mut rng,
        )
        .unwrap();
        let pn = ProtoNet::new(bb);

        let g = Graph::eval();
        let mut r1 = Rng::new(0);
        let tape = g.value(pn.episode_loss(&g, &store, &f.support, &f.query, &f.tags, &mut r1).unwrap());
        let ex = Infer::new();
        let mut r2 = Rng::new(0);
        let arena = ex.value(pn.episode_loss(&ex, &store, &f.support, &f.query, &f.tags, &mut r2).unwrap());
        assert_bitwise(&tape, &arena, "protonet episode loss");

        let batched = pn.predict_task(&store, &f.support, &f.query, &f.tags);
        for (q, path) in f.query.iter().zip(&batched) {
            prop_assert_eq!(path, &pn.predict(&store, &f.support, q, &f.tags));
        }
    }

    /// SNAIL: episode loss bitwise identical across executors; `predict_task`
    /// (support memory hoisted) matches per-query prediction.
    #[test]
    fn snail_bitwise_equal(seed in 0u64..500) {
        let f = fixture(4);
        let mut store = ParamStore::new();
        let mut rng = Rng::new(seed);
        let bb = Backbone::new(
            config(Conditioning::None, EncoderKind::BiGru, HeadKind::Dense { n_ways: 3 }),
            &f.enc,
            &mut store,
            &mut rng,
        )
        .unwrap();
        let snail = Snail::new(bb, SnailConfig::default_for(3), &mut store, &mut rng);

        let g = Graph::eval();
        let mut r1 = Rng::new(0);
        let tape = g.value(snail.episode_loss(&g, &store, &f.support, &f.query, &f.tags, &mut r1).unwrap());
        let ex = Infer::new();
        let mut r2 = Rng::new(0);
        let arena = ex.value(snail.episode_loss(&ex, &store, &f.support, &f.query, &f.tags, &mut r2).unwrap());
        assert_bitwise(&tape, &arena, "snail episode loss");

        let batched = snail.predict_task(&store, &f.support, &f.query, &f.tags);
        for (q, path) in f.query.iter().zip(&batched) {
            prop_assert_eq!(path, &snail.predict(&store, &f.support, q, &f.tags));
        }
    }

    /// Frozen-LM baselines: batch loss bitwise identical across executors;
    /// `predict_task_with` (transitions hoisted) matches per-sentence decode.
    #[test]
    fn frozenlm_bitwise_equal(flavor_ix in 0usize..5) {
        let f = fixture(4);
        let flavor = fewner_models::LmFlavor::ALL[flavor_ix];
        let lm = FrozenLm::new(flavor, &f.enc, 3).unwrap();

        let g = Graph::eval();
        let tape = g.value(lm.batch_loss(&g, &f.query, &f.tags).unwrap());
        let ex = Infer::new();
        let arena = ex.value(lm.batch_loss(&ex, &f.query, &f.tags).unwrap());
        assert_bitwise(&tape, &arena, "frozen-lm batch loss");

        let sents: Vec<_> = f.query.iter().map(|(s, _)| s).collect();
        let batched = lm.predict_task_with(&lm.head_params, sents.iter().copied(), &f.tags);
        for (sent, path) in sents.iter().zip(&batched) {
            prop_assert_eq!(path, &lm.predict(sent, &f.tags));
        }
    }
}
