//! Property-based tests on the CRF layers: information inequalities that
//! must hold for any parameters, and consistency between the dense and
//! slot-shared heads.

use fewner_models::{crf_nll, viterbi, CrfHead, DenseCrf, SlotSharedCrf};
use fewner_tensor::{Array, Graph, ParamStore};
use fewner_text::{validate_tags, Tag, TagSet};
use fewner_util::Rng;
use proptest::prelude::*;

fn rand_array(rows: usize, cols: usize, seed: u64) -> Array {
    let mut rng = Rng::new(seed);
    Array::uniform(rows, cols, -1.5, 1.5, &mut rng)
}

/// A random *valid* BIO tag-index sequence.
fn random_valid_path(len: usize, tags: &TagSet, rng: &mut Rng) -> Vec<usize> {
    let mut out = Vec::with_capacity(len);
    let mut prev: Option<Tag> = None;
    for _ in 0..len {
        let choices: Vec<usize> = (0..tags.len())
            .filter(|&j| {
                let t = tags.tag(j);
                match prev {
                    None => tags.allowed_at_start(t),
                    Some(p) => tags.allowed(p, t),
                }
            })
            .collect();
        let pick = choices[rng.below(choices.len())];
        prev = Some(tags.tag(pick));
        out.push(pick);
    }
    out
}

fn path_score(emissions: &Array, trans: &Array, start: &Array, path: &[usize]) -> f64 {
    let mut score = start.at(0, path[0]) as f64 + emissions.at(0, path[0]) as f64;
    for t in 1..path.len() {
        score += trans.at(path[t - 1], path[t]) as f64 + emissions.at(t, path[t]) as f64;
    }
    score
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The NLL of any gold path is non-negative (log Z ≥ path score) and
    /// equals −log p, so it is finite for finite scores.
    #[test]
    fn nll_is_nonnegative_for_any_path(seed in 0u64..2000, len in 1usize..7) {
        let tags = TagSet::new(2).unwrap();
        let t = tags.len();
        let mut rng = Rng::new(seed);
        let emissions = rand_array(len, t, seed ^ 1);
        let trans = rand_array(t, t, seed ^ 2);
        let start = rand_array(1, t, seed ^ 3);
        let gold = random_valid_path(len, &tags, &mut rng);

        let g = Graph::new();
        let nll = crf_nll(
            &g,
            g.constant(emissions),
            g.constant(trans),
            g.constant(start),
            &gold,
        );
        let v = g.value(nll).scalar_value();
        prop_assert!(v.is_finite());
        prop_assert!(v >= -1e-4, "NLL {v} < 0");
    }

    /// The Viterbi path scores at least as high as any random valid path.
    #[test]
    fn viterbi_is_optimal_over_sampled_paths(seed in 0u64..2000, len in 1usize..7) {
        let tags = TagSet::new(2).unwrap();
        let t = tags.len();
        let mut rng = Rng::new(seed);
        let emissions = rand_array(len, t, seed ^ 4);
        let trans = rand_array(t, t, seed ^ 5);
        let start = rand_array(1, t, seed ^ 6);
        let best = viterbi(&emissions, &trans, &start, &tags);
        let best_score = path_score(&emissions, &trans, &start, &best);
        for _ in 0..20 {
            let candidate = random_valid_path(len, &tags, &mut rng);
            let s = path_score(&emissions, &trans, &start, &candidate);
            prop_assert!(
                s <= best_score + 1e-3,
                "candidate {candidate:?} ({s}) beats Viterbi {best:?} ({best_score})"
            );
        }
    }

    /// Both heads produce correctly-shaped emissions whose NLL is positive
    /// and differentiable for any way-count they support.
    #[test]
    fn heads_agree_on_interface_contracts(seed in 0u64..500, n_ways in 1usize..5) {
        let hidden = 6;
        let mut rng = Rng::new(seed);
        let tags = TagSet::new(n_ways).unwrap();
        let h_val = rand_array(4, hidden, seed ^ 7);
        let mut rng2 = Rng::new(seed ^ 8);
        let gold = random_valid_path(4, &tags, &mut rng2);

        // Dense head.
        let mut store = ParamStore::new();
        let dense = DenseCrf::new(&mut store, "d", hidden, n_ways, &mut rng);
        let g = Graph::new();
        let h = g.constant(h_val.clone());
        let e = dense.emissions(&g, &store, h, &tags);
        prop_assert_eq!(g.shape(e), (4, tags.len()));
        let nll = dense.nll(&g, &store, h, &gold, &tags);
        prop_assert!(g.value(nll).scalar_value() >= -1e-4);
        prop_assert!(g.backward(nll).is_ok());

        // Slot-shared head at the same way-count.
        let mut store2 = ParamStore::new();
        let ss = SlotSharedCrf::new(&mut store2, "s", hidden, 4, 8, &mut rng);
        let g2 = Graph::new();
        let h2 = g2.constant(h_val);
        let e2 = ss.emissions(&g2, &store2, h2, &tags);
        prop_assert_eq!(g2.shape(e2), (4, tags.len()));
        let nll2 = ss.nll(&g2, &store2, h2, &gold, &tags);
        prop_assert!(g2.value(nll2).scalar_value() >= -1e-4);
        prop_assert!(g2.backward(nll2).is_ok());

        // Both decode to BIO-valid sequences. (CrfHead is no longer
        // dyn-compatible — its methods are generic over the executor — so
        // decode each head statically.)
        for path in [
            dense.decode(&g, &store, h, &tags),
            ss.decode(&g2, &store2, h2, &tags),
        ] {
            let decoded: Vec<Tag> = path.iter().map(|&i| tags.tag(i)).collect();
            validate_tags(&decoded, &tags).unwrap();
        }
    }

    /// Slot permutation equivariance of the slot-shared head: permuting the
    /// slot embeddings permutes the B/I emission columns accordingly.
    #[test]
    fn slot_shared_head_is_slot_symmetric(seed in 0u64..500) {
        let hidden = 6;
        let mut rng = Rng::new(seed);
        let tags = TagSet::new(3).unwrap();
        let mut store = ParamStore::new();
        let ss = SlotSharedCrf::new(&mut store, "s", hidden, 4, 8, &mut rng);
        let h_val = rand_array(3, hidden, seed ^ 11);

        let g = Graph::new();
        let h = g.constant(h_val.clone());
        let e = g.value(ss.emissions(&g, &store, h, &tags));

        // Swap slot embeddings 0 and 1 in the store.
        let slots_id = store.get("s.slots").unwrap();
        let mut slots = (**store.value(slots_id)).clone();
        let row0: Vec<f32> = slots.row(0).to_vec();
        let row1: Vec<f32> = slots.row(1).to_vec();
        slots.row_mut(0).copy_from_slice(&row1);
        slots.row_mut(1).copy_from_slice(&row0);
        store.set(slots_id, slots);

        let g2 = Graph::new();
        let h2 = g2.constant(h_val);
        let e2 = g2.value(ss.emissions(&g2, &store, h2, &tags));

        // O column unchanged; B-0/I-0 swapped with B-1/I-1; slot 2 unchanged.
        for r in 0..3 {
            prop_assert!((e.at(r, 0) - e2.at(r, 0)).abs() < 1e-6);
            prop_assert!((e.at(r, 1) - e2.at(r, 3)).abs() < 1e-5); // B-0 <-> B-1
            prop_assert!((e.at(r, 2) - e2.at(r, 4)).abs() < 1e-5); // I-0 <-> I-1
            prop_assert!((e.at(r, 5) - e2.at(r, 5)).abs() < 1e-6); // B-2 fixed
        }
    }
}
