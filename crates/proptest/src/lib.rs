//! A dependency-free property-testing shim.
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! the real `proptest` crate from a registry. This crate re-implements the
//! small API subset the test suite uses — the [`proptest!`] macro,
//! [`Strategy`] over integer/float ranges and tuples,
//! [`collection::vec`], [`Strategy::prop_map`], [`prop_assert!`] and
//! [`prop_assert_eq!`] — with deterministic case generation seeded from the
//! test name. There is no shrinking: a failing case reports its index and
//! reruns reproduce it exactly.

use std::fmt;
use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property assertion, carrying its rendered message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator seeded from the test name, so every
/// run of a test replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test name (FNV-1a over its bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.f64() as $t * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Collection strategies.
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element`-generated values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + (rng.next_u64() as usize) % span.max(1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with location info (no panic unwind through generated values).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?} at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item expands to a plain test that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Map, ProptestConfig, Strategy, TestCaseError,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.5f32..5.0), &mut rng);
            assert!((0.5..5.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_test("x");
            Strategy::generate(&collection::vec((0u64..10, 1usize..4), 0..6), &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(a in 0u64..100, b in 1usize..5) {
            prop_assert!(a < 100);
            prop_assert_eq!(b.min(4), b);
        }
    }
}
