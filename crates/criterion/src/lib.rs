//! A dependency-free micro-benchmark shim.
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! the real `criterion` crate from a registry. This crate re-implements the
//! small API subset the benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with
//! wall-clock timing over a fixed sample count and a one-line report per
//! benchmark. It produces honest timings, not criterion's statistics.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so call sites may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver: runs closures and prints per-iteration timings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` (which must call [`Bencher::iter`]) and prints
    /// `name ... median ± spread` per-iteration timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            nanos: Vec::new(),
        };
        f(&mut b);
        b.nanos.sort_unstable();
        if b.nanos.is_empty() {
            println!("{name:<40} (no samples: Bencher::iter never called)");
        } else {
            let median = b.nanos[b.nanos.len() / 2];
            let min = b.nanos[0];
            let max = b.nanos[b.nanos.len() - 1];
            println!(
                "{name:<40} median {} / iter (min {}, max {}, n={})",
                fmt_nanos(median),
                fmt_nanos(min),
                fmt_nanos(max),
                b.nanos.len()
            );
        }
        self
    }

    /// Starts a named group: benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of related benchmarks (`group/name` labels).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Like [`Criterion::bench_function`], labelled `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&label, f);
        self
    }

    /// Ends the group (the real criterion finalises reports here).
    pub fn finish(self) {}
}

/// Handed to the benchmark closure; owns the timing loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `samples` timed iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        std_black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            self.nanos.push(t0.elapsed().as_nanos());
        }
    }
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group function invoking each target with a shared
/// [`Criterion`] built from `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn nanos_format_is_scaled() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert!(fmt_nanos(2_500).contains("µs"));
        assert!(fmt_nanos(2_500_000).contains("ms"));
        assert!(fmt_nanos(2_500_000_000).contains(" s"));
    }
}
