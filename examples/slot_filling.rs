//! Slot filling — the extension the paper's discussion proposes (§5:
//! "our approach can be easily extended to other sequence labeling tasks,
//! such as part-of-speech tagging and slot filling").
//!
//! Nothing in FEWNER is NER-specific: slots in task-oriented utterances
//! ("book a table *tomorrow night* at *Glenport*") are spans with types,
//! exactly like entities. This example meta-trains FEWNER on a synthetic
//! dialogue corpus and adapts it to never-seen slot types.
//!
//! ```text
//! cargo run --release --example slot_filling
//! ```

use fewner::prelude::*;

fn main() -> fewner::Result<()> {
    let data = DatasetProfile::slot_filling().generate(0.1)?;
    let stats = data.stats();
    println!(
        "slot-filling corpus: {} utterances, {} slot types, {:.1} slots/utterance",
        stats.sentences,
        stats.types,
        stats.mentions as f64 / stats.sentences as f64
    );
    println!("sample utterance:");
    println!(
        "  {}",
        data.sentences[0].display_with(|t| data.type_name(t).to_string())
    );

    // 8 training slot types, 3 validation, 3 never-seen test types.
    let split = split_types(&data, (8, 3, 3), 42)?;
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);

    let bb = BackboneConfig {
        word_dim: 32,
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        ..BackboneConfig::default_for(3)
    };
    let meta = MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    };
    let mut fewner = Fewner::new(bb, &enc, meta.clone())?;
    let schedule = TrainConfig::new(3, 1).iterations(150).query_size(6).seed(6);
    println!("\nmeta-training on 3-way 1-shot slot-tagging episodes…");
    Trainer::new().train(&mut fewner, &split.train, &enc, &meta, &schedule)?;

    let sampler = EpisodeSampler::new(&split.test, 3, 1, 6)?;
    let tasks = sampler.eval_set(0xE7A1, 20)?;
    let score = evaluate(&fewner, &tasks, &enc)?;
    println!(
        "3-way 1-shot slot F1 on unseen slot types: {}",
        score.as_percent()
    );

    let task = &tasks[0];
    let preds = fewner.adapt_and_predict(task, &enc)?;
    let tags = task.tag_set();
    println!("\nadapted predictions:");
    for (pred_idx, sent) in preds.iter().zip(&task.query).take(3) {
        let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
        println!(
            "  {}",
            qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
                data.type_name(task.slot_types[slot]).to_string()
            })
        );
    }
    Ok(())
}
