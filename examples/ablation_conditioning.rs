//! Conditioning ablation (paper §3.2.4 / Table 5): compare method B (FiLM
//! on the BiGRU output, the paper's choice) against method A (concatenating
//! φ to the BiGRU inputs) on the same cell, and demonstrate the
//! second-order meta-gradient option.
//!
//! ```text
//! cargo run --release --example ablation_conditioning
//! ```

use fewner::prelude::*;

fn main() -> fewner::Result<()> {
    let data = DatasetProfile::nne().generate(0.02)?;
    let split = split_types(&data, (52, 10, 15), 42)?;
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);

    let meta = MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    };
    let schedule = TrainConfig::new(5, 1).iterations(120).query_size(6).seed(4);
    let sampler = EpisodeSampler::new(&split.test, 5, 1, 6)?;
    let tasks = sampler.eval_set(0xE7A1, 15)?;

    for (label, cond, second_order) in [
        (
            "method B (FiLM)",
            Conditioning::Film,
            SecondOrder::FirstOrder,
        ),
        (
            "method A (concat)",
            Conditioning::ConcatInput,
            SecondOrder::FirstOrder,
        ),
        (
            "method B + exact meta-gradient",
            Conditioning::Film,
            SecondOrder::FiniteDiffHvp { epsilon: 1e-2 },
        ),
    ] {
        let bb = BackboneConfig {
            word_dim: 32,
            hidden: 24,
            phi_dim: 24,
            slot_ctx_dim: 8,
            conditioning: cond,
            ..BackboneConfig::default_for(5)
        };
        let cfg = MetaConfig {
            second_order,
            ..meta.clone()
        };
        let mut learner = Fewner::new(bb, &enc, cfg.clone())?;
        let t0 = std::time::Instant::now();
        fewner_core::Trainer::new().train(&mut learner, &split.train, &enc, &cfg, &schedule)?;
        let score = evaluate(&learner, &tasks, &enc)?;
        println!(
            "{label:<32} F1 {}  (trained in {:.0}s)",
            score.as_percent(),
            t0.elapsed().as_secs_f64()
        );
    }
    Ok(())
}
