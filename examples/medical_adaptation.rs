//! Cross-domain cross-type adaptation (paper §4.4): meta-train FEWNER on a
//! GENIA-profile source corpus, then adapt — updating only φ — to the
//! BioNLP13CG target, whose domain annotation scheme *and* entity types are
//! new. Also demonstrates that θ is bit-identical before and after
//! adaptation (the paper's overfitting/efficiency argument).
//!
//! ```text
//! cargo run --release --example medical_adaptation
//! ```

use fewner::prelude::*;

fn main() -> fewner::Result<()> {
    let source = DatasetProfile::genia().generate(0.05)?;
    let target = DatasetProfile::bionlp13cg().generate(0.2)?;
    println!(
        "source {}: {} sentences / {} types; target {}: {} sentences / {} types",
        source.name,
        source.sentences.len(),
        source.types.len(),
        target.name,
        target.sentences.len(),
        target.types.len()
    );

    let train = full_view(&source);
    let (_val, test) = holdout_target(&target, 11)?;
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    // The encoder covers both corpora, like a real pre-trained table.
    let enc = TokenEncoder::build(&[&source, &target], &spec, 4);

    let bb = BackboneConfig {
        word_dim: 32,
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        ..BackboneConfig::default_for(5)
    };
    let meta = MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    };
    let mut fewner = Fewner::new(bb, &enc, meta.clone())?;

    let schedule = TrainConfig::new(5, 1).iterations(150).query_size(6).seed(2);
    println!(
        "meta-training on {} source episodes…",
        schedule.iterations * meta.meta_batch
    );
    fewner_core::Trainer::new().train(&mut fewner, &train, &enc, &meta, &schedule)?;

    // Evaluate on target-domain tasks, verifying θ never changes.
    let sampler = EpisodeSampler::new(&test, 5, 1, 6)?;
    let tasks = sampler.eval_set(0xE7A1, 20)?;
    let theta_before = fewner.theta.snapshot();
    let score = evaluate(&fewner, &tasks, &enc)?;
    assert_eq!(
        theta_before,
        fewner.theta.snapshot(),
        "adaptation must not touch θ"
    );
    println!(
        "GENIA → BioNLP13CG 5-way 1-shot episode F1: {}",
        score.as_percent()
    );
    println!(
        "θ untouched by {} adaptations ✓ (only φ was updated)",
        tasks.len()
    );

    // The serving surface: adapt once, then reuse the context for as many
    // predict calls as traffic brings — this is what `fewner serve` caches.
    let opts = ServeOptions::new();
    let task = &tasks[0];
    let ctx = fewner.adapt(task, &enc, &opts)?;
    let queries: Vec<_> = task.query.iter().map(|s| enc.encode(&s.tokens)).collect();
    let (first, second) = (
        fewner.predict(&ctx, &queries, &opts)?,
        fewner.predict(&ctx, &queries, &opts)?,
    );
    assert_eq!(first, second, "a frozen context decodes deterministically");
    println!(
        "reused one adapted context ({} φ values) across {} query sentences twice",
        ctx.phi_values().len(),
        queries.len()
    );

    // Zero-shot comparison: predictions *without* the inner loop, i.e. φ=0.
    let mut zero_shot = F1Counts::default();
    for task in &tasks {
        let tags = task.tag_set();
        let (phi_store, phi_id) = fewner.backbone.new_context();
        for sent in &task.query {
            let encd = enc.encode(&sent.tokens);
            let pred_idx =
                fewner
                    .backbone
                    .decode(&fewner.theta, Some((&phi_store, phi_id)), &encd, &tags);
            let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
            zero_shot.add_tags(&sent.tags, &pred);
        }
    }
    println!(
        "for reference, φ = 0 (no adaptation) pooled F1: {:.2}%",
        zero_shot.f1() * 100.0
    );
    Ok(())
}
