//! Quickstart: meta-train FEWNER on a small medical corpus, adapt to
//! never-seen entity types from one support set, and inspect predictions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fewner::prelude::*;

fn main() -> fewner::Result<()> {
    // A GENIA-profile corpus at 8 % scale, split so the test types never
    // appear during training (intra-domain cross-type, paper §4.2).
    let data = DatasetProfile::genia().generate(0.08)?;
    let split = split_types(&data, (18, 8, 10), 42)?;
    println!(
        "corpus: {} sentences, {} types; train types {}, test types {}",
        data.sentences.len(),
        data.types.len(),
        split.train.types.len(),
        split.test.types.len()
    );

    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&data], &spec, 4);

    // FEWNER: FiLM-conditioned CNN-BiGRU-CRF, φ = 24 + 3·8 dims.
    let bb = BackboneConfig {
        word_dim: 32,
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        ..BackboneConfig::default_for(3)
    };
    let meta = MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    };
    let mut fewner = Fewner::new(bb, &enc, meta.clone())?;

    // Score before any training (should be near zero).
    let sampler = EpisodeSampler::new(&split.test, 3, 1, 6)?;
    let tasks = sampler.eval_set(0xE7A1, 20)?;
    let before = evaluate(&fewner, &tasks, &enc)?;
    println!("episode F1 before meta-training: {}", before.as_percent());

    // Meta-train on 3-way 1-shot episodes of *training* types.
    let schedule = TrainConfig::new(3, 1).iterations(200).query_size(6).seed(1);
    let log = Trainer::new().train(&mut fewner, &split.train, &enc, &meta, &schedule)?;
    println!(
        "meta-trained {} tasks in {:.1}s (loss {:.3} -> {:.3})",
        log.tasks_seen,
        log.wall_secs,
        log.losses.first().unwrap(),
        log.tail_loss(10).unwrap_or(f32::NAN)
    );

    let after = evaluate(&fewner, &tasks, &enc)?;
    println!("episode F1 after  meta-training: {}", after.as_percent());

    // Show one adapted prediction in the paper's bracket notation.
    let task = &tasks[0];
    let preds = fewner.adapt_and_predict(task, &enc)?;
    let tags = task.tag_set();
    println!("\nsample adapted predictions (✓ = exact sentence match):");
    for (pred_idx, sent) in preds.iter().zip(&task.query).take(3) {
        let pred: Vec<Tag> = pred_idx.iter().map(|&i| tags.tag(i)).collect();
        let line = qualitative_line(&sent.tokens, &sent.tags, &pred, |slot| {
            data.type_name(task.slot_types[slot]).to_string()
        });
        println!("  {line}");
    }
    Ok(())
}
