//! Cross-domain intra-type adaptation (paper §4.3): the ACE2005 Broadcast
//! News → Conversational Telephone Speech transfer, comparing FEWNER with
//! the FineTune baseline head-to-head on the same fixed evaluation tasks.
//!
//! ```text
//! cargo run --release --example cross_domain_news
//! ```

use fewner::prelude::*;

fn main() -> fewner::Result<()> {
    let source = DatasetProfile::ace2005(AceDomain::Bn).generate(0.3)?;
    let target = DatasetProfile::ace2005(AceDomain::Cts).generate(0.3)?;
    println!(
        "BN → CTS: same 54 fine-grained types, different speech style; genre overlap {:.2}",
        Genre::BroadcastNews.overlap(&Genre::Telephone)
    );

    let src_split = split_sentences(&source, (8.0, 1.0, 1.0), 7)?;
    let dst_split = split_sentences(&target, (8.0, 1.0, 1.0), 7)?;
    let spec = EmbeddingSpec {
        dim: 32,
        ..EmbeddingSpec::default()
    };
    let enc = TokenEncoder::build(&[&source, &target], &spec, 4);

    let meta = MetaConfig {
        meta_lr: 1e-2,
        inner_lr: 0.25,
        inner_steps_train: 3,
        inner_steps_test: 10,
        meta_batch: 4,
        ..MetaConfig::default()
    };
    let bb = |cond| BackboneConfig {
        word_dim: 32,
        hidden: 24,
        phi_dim: 24,
        slot_ctx_dim: 8,
        conditioning: cond,
        ..BackboneConfig::default_for(5)
    };
    let schedule = TrainConfig::new(5, 1).iterations(150).query_size(6).seed(3);

    let sampler = EpisodeSampler::new(&dst_split.test, 5, 1, 6)?;
    let tasks = sampler.eval_set(0xE7A1, 20)?;

    let mut fewner = Fewner::new(bb(Conditioning::Film), &enc, meta.clone())?;
    fewner_core::Trainer::new().train(&mut fewner, &src_split.train, &enc, &meta, &schedule)?;
    let fewner_score = evaluate(&fewner, &tasks, &enc)?;

    let mut finetune = FineTuneLearner::new(bb(Conditioning::None), &enc, meta.clone())?;
    fewner_core::Trainer::new().train(&mut finetune, &src_split.train, &enc, &meta, &schedule)?;
    let finetune_score = evaluate(&finetune, &tasks, &enc)?;

    println!(
        "\nBN → CTS, 5-way 1-shot, {} fixed evaluation tasks:",
        tasks.len()
    );
    println!("  FewNER  : {}", fewner_score.as_percent());
    println!("  FineTune: {}", finetune_score.as_percent());
    println!(
        "\nFEWNER adapted {} low-dimensional parameters per task; FineTune re-trained all {} scalars.",
        fewner.backbone.config().phi_total(),
        finetune.theta.num_scalars()
    );
    Ok(())
}
