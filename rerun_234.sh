#!/bin/bash
set -u
cd "$(dirname "$0")"
for bin in table2 table3 table4; do
  echo "=== $bin ($(date +%H:%M:%S)) ==="
  ./target/release/$bin --scale small --iterations 150 --episodes 25 2>&1 | tee reports/${bin}.log
done
echo "RERUN DONE $(date +%H:%M:%S)"
